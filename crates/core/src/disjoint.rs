//! Edge-disjoint Hamiltonian cycles in B(d,n) (Section 3.2).
//!
//! The construction pipeline follows the paper exactly:
//!
//! 1. For a prime power d, a primitive polynomial of degree n over GF(d)
//!    yields a **maximal cycle** C of length d^n − 1 that misses only the
//!    node 0^n (Section 3.1). Its d translates {s + C} are pairwise
//!    edge-disjoint and partition the non-loop edges (Lemmas 3.1–3.3).
//! 2. Each translate is upgraded to a Hamiltonian cycle H_s by rerouting
//!    one edge α·s^{n−1} → s^{n−1}·â through the missing node s^n, where â
//!    is chosen through a conflict-avoiding function f (Equation 3.3 and
//!    Lemma 3.4).
//! 3. A strategy for f — depending on the characteristic p of GF(d) —
//!    selects a subfamily of pairwise disjoint H_s of size ψ(p^e)
//!    (Strategies 1–3, Proposition 3.1).
//! 4. For composite d, Hamiltonian cycles of the coprime factors are
//!    combined with the Rees product (Lemmas 3.6–3.7, Proposition 3.2).
//!
//! The public entry point is [`DisjointHamiltonianCycles::construct`], which
//! returns ψ(d) pairwise edge-disjoint Hamiltonian cycles of B(d,n).

use std::collections::HashMap;

use dbg_algebra::gf::GField;
use dbg_algebra::num::{factorize, mod_pow, pow};
use dbg_algebra::polygf::PolyGf;
use dbg_algebra::words::WordSpace;

use crate::bounds::{decompose_two_as_odd_powers, psi, two_as_odd_power};
use crate::seq::{nodes_from_symbols, symbols_from_nodes};

/// The family of translated maximal cycles {s + C : s ∈ GF(d)} in B(d,n),
/// d a prime power, together with the bookkeeping needed to upgrade any of
/// them to a Hamiltonian cycle.
#[derive(Clone, Debug)]
pub struct MaximalCycleFamily {
    space: WordSpace,
    field: GField,
    poly: PolyGf,
    recurrence: Vec<u64>,
    omega: u64,
    base_symbols: Vec<u64>,
    /// node code → its position in C (usize::MAX for 0^n, which C misses).
    position: Vec<usize>,
}

impl MaximalCycleFamily {
    /// Builds the family for B(d,n) using the lexicographically first
    /// primitive polynomial of degree n over GF(d).
    ///
    /// # Panics
    /// Panics if `d` is not a prime power or `n < 2`.
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        let field = GField::new(d);
        let poly = PolyGf::find_primitive(&field, n as usize);
        Self::with_polynomial(field, poly)
    }

    /// Builds the family from an explicit primitive polynomial (degree n),
    /// as the paper's worked examples do.
    ///
    /// # Panics
    /// Panics if the polynomial is not primitive over the field or n < 2.
    #[must_use]
    pub fn with_polynomial(field: GField, poly: PolyGf) -> Self {
        assert!(
            poly.is_primitive(&field),
            "the characteristic polynomial must be primitive"
        );
        let n = poly.degree() as u32;
        assert!(n >= 2, "the disjoint-HC construction requires n >= 2");
        let d = field.order();
        let space = WordSpace::new(d, n);
        let recurrence = poly.to_recurrence(&field);
        let omega = field.sum(recurrence.iter().copied());
        let mut initial = vec![0u64; n as usize];
        initial[n as usize - 1] = 1;
        let lfsr = dbg_algebra::lfsr::Lfsr::from_characteristic(field.clone(), &poly, &initial);
        let base_symbols = lfsr.full_period();
        debug_assert_eq!(base_symbols.len() as u64, pow(d, n) - 1);
        let nodes = nodes_from_symbols(space, &base_symbols);
        let mut position = vec![usize::MAX; space.count() as usize];
        for (i, &v) in nodes.iter().enumerate() {
            position[v] = i;
        }
        MaximalCycleFamily {
            space,
            field,
            poly,
            recurrence,
            omega,
            base_symbols,
            position,
        }
    }

    /// The alphabet size d.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.space.d()
    }

    /// The word length n.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.space.n()
    }

    /// The word space of B(d,n).
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// The field GF(d).
    #[must_use]
    pub fn field(&self) -> &GField {
        &self.field
    }

    /// The primitive characteristic polynomial of the recurrence.
    #[must_use]
    pub fn polynomial(&self) -> &PolyGf {
        &self.poly
    }

    /// ω = a_0 + … + a_{n−1}, the recurrence-coefficient sum of Lemma 3.2.
    #[must_use]
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// The base maximal cycle C as a circular symbol sequence of length d^n − 1.
    #[must_use]
    pub fn base_symbols(&self) -> &[u64] {
        &self.base_symbols
    }

    /// The translate s + C as a circular symbol sequence.
    #[must_use]
    pub fn translate_symbols(&self, s: u64) -> Vec<u64> {
        self.base_symbols
            .iter()
            .map(|&c| self.field.add(s, c))
            .collect()
    }

    /// The translate s + C as a node cycle of length d^n − 1 (it misses s^n).
    #[must_use]
    pub fn translate_nodes(&self, s: u64) -> Vec<usize> {
        nodes_from_symbols(self.space, &self.translate_symbols(s))
    }

    /// The position of `node` within the cycle listing of s + C, or `None`
    /// if `node` is the missing node s^n.
    #[must_use]
    pub fn position_in_translate(&self, s: u64, node: usize) -> Option<usize> {
        // node lies at position i of s + C  iff  (node − s·1^n) lies at
        // position i of C (digit-wise field subtraction).
        let digits = self.space.digits(node as u64);
        let shifted: Vec<u64> = digits.iter().map(|&x| self.field.sub(x, s)).collect();
        let code = self.space.from_digits(&shifted) as usize;
        if code == 0 {
            return None;
        }
        Some(self.position[code])
    }

    /// Given a translate s and a chosen exit digit α ≠ s, the digit â that
    /// Equation 3.3 forces for the re-entry node s^{n−1}·â:
    /// â = a_0·α + s·(1 − a_0).
    #[must_use]
    pub fn reentry_digit(&self, s: u64, alpha: u64) -> u64 {
        let a0 = self.recurrence[0];
        self.field.add(
            self.field.mul(a0, alpha),
            self.field.mul(s, self.field.sub(1, a0)),
        )
    }

    /// The exit digit α induced by a conflict-avoidance value f(s)
    /// (Definition of H_s in Section 3.2.1): from â = s·ω + f(s)·(1 − ω)
    /// and Equation 3.3, α = a_0^{-1}(1 − ω)(f(s) − s) + s.
    #[must_use]
    pub fn exit_digit_for(&self, s: u64, f_s: u64) -> u64 {
        let a0 = self.recurrence[0];
        let one_minus_omega = self.field.sub(1, self.omega);
        self.field.add(
            self.field.mul(
                self.field.inv(a0),
                self.field.mul(one_minus_omega, self.field.sub(f_s, s)),
            ),
            s,
        )
    }

    /// The two replacement edges used to route s + C through s^n when
    /// exiting at digit α: (α·s^{n−1} → s^n) and (s^n → s^{n−1}·â).
    #[must_use]
    pub fn replacement_edges(&self, s: u64, alpha: u64) -> [(usize, usize); 2] {
        let n = self.space.n() as usize;
        let mut exit_digits = vec![s; n];
        exit_digits[0] = alpha;
        let exit = self.space.from_digits(&exit_digits) as usize;
        let sn = self.space.constant(s) as usize;
        let mut entry_digits = vec![s; n];
        entry_digits[n - 1] = self.reentry_digit(s, alpha);
        let entry = self.space.from_digits(&entry_digits) as usize;
        [(exit, sn), (sn, entry)]
    }

    /// The Hamiltonian cycle H_s obtained by routing s + C through s^n with
    /// exit digit α (which must differ from s).
    #[must_use]
    pub fn hamiltonian_with_alpha(&self, s: u64, alpha: u64) -> Vec<usize> {
        assert_ne!(alpha, s, "the exit digit must differ from s (α ≠ s)");
        let nodes = self.translate_nodes(s);
        let n = self.space.n() as usize;
        let mut exit_digits = vec![s; n];
        exit_digits[0] = alpha;
        let exit = self.space.from_digits(&exit_digits) as usize;
        let pos = self
            .position_in_translate(s, exit)
            .expect("α·s^{n-1} with α ≠ s always lies on s + C");
        let sn = self.space.constant(s) as usize;

        let k = nodes.len();
        let mut h = Vec::with_capacity(k + 1);
        h.push(nodes[pos]);
        h.push(sn);
        for i in 1..k {
            h.push(nodes[(pos + i) % k]);
        }
        debug_assert_eq!(h.len() as u64, self.space.count());
        // The node after the splice must be s^{n-1}·â.
        let mut entry_digits = vec![s; n];
        entry_digits[n - 1] = self.reentry_digit(s, alpha);
        debug_assert_eq!(h[2], self.space.from_digits(&entry_digits) as usize);
        h
    }

    /// The Hamiltonian cycle H_s determined by a conflict-avoidance value
    /// f(s) ≠ s (the form used by Strategies 1–3).
    #[must_use]
    pub fn hamiltonian_with_f(&self, s: u64, f_s: u64) -> Vec<usize> {
        assert_ne!(f_s, s, "the strategy function must satisfy f(s) ≠ s");
        self.hamiltonian_with_alpha(s, self.exit_digit_for(s, f_s))
    }
}

/// The strategy used to choose the conflict-avoidance function f for a
/// prime power d = p^e (Section 3.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Strategy 1 (p = 2): f(x) = 0 for x ≠ 0; all d − 1 nonzero translates
    /// are selected.
    CharacteristicTwo,
    /// Strategy 2 (2 = λ^A + λ^B with A, B odd): f(x) = λ^A·x, f(0) = λ.
    OddSum {
        /// The primitive root λ of Z_p.
        lambda: u64,
        /// The odd exponent A.
        a: u32,
        /// The odd exponent B.
        b: u32,
        /// Whether H_0 can be added ((p−1)/2 even).
        include_zero: bool,
    },
    /// Strategy 3 (2 = λ^A with A odd): f(x) = λ^A·x = 2x, f(0) = λ.
    OddPower {
        /// The primitive root λ of Z_p.
        lambda: u64,
        /// The odd exponent A.
        a: u32,
    },
}

impl Strategy {
    /// Selects the strategy for characteristic p, preferring Strategy 2
    /// (which can reach (p^e + 1)/2 cycles) when condition (b) holds.
    #[must_use]
    pub fn select(p: u64) -> Self {
        if p == 2 {
            return Strategy::CharacteristicTwo;
        }
        if let Some((lambda, a, b)) = decompose_two_as_odd_powers(p) {
            return Strategy::OddSum {
                lambda,
                a,
                b,
                include_zero: ((p - 1) / 2).is_multiple_of(2),
            };
        }
        let (lambda, a) = two_as_odd_power(p)
            .expect("Lemma 3.5: condition (a) holds whenever condition (b) fails");
        Strategy::OddPower { lambda, a }
    }

    /// The value f(x) in GF(d) (with p = characteristic of `field`).
    #[must_use]
    pub fn f_value(&self, field: &GField, x: u64) -> u64 {
        let p = field.characteristic();
        match *self {
            Strategy::CharacteristicTwo => 0,
            Strategy::OddSum { lambda, a, .. } | Strategy::OddPower { lambda, a } => {
                if x == 0 {
                    field.embed_int(lambda)
                } else {
                    field.mul(field.embed_int(mod_pow(lambda, u64::from(a), p)), x)
                }
            }
        }
    }

    /// The translates s whose Hamiltonian cycles H_s are pairwise disjoint
    /// under this strategy (the set L of Section 3.2.1); |result| = ψ(p^e).
    #[must_use]
    pub fn selected_translates(&self, field: &GField) -> Vec<u64> {
        let q = field.order();
        let p = field.characteristic();
        match *self {
            Strategy::CharacteristicTwo => (1..q).collect(),
            Strategy::OddSum { .. } | Strategy::OddPower { .. } => {
                // J = ⟨λ⟩ = GF(p)^* embedded in GF(q); quadratic residues of
                // Z_p are its even powers.
                let residues: Vec<u64> = {
                    let mut r: Vec<u64> = (1..p).map(|k| k * k % p).collect();
                    r.sort_unstable();
                    r.dedup();
                    r
                };
                let subgroup: Vec<u64> = (1..p).collect();
                let mut selected = Vec::new();
                let mut seen = vec![false; q as usize];
                for x in 1..q {
                    if seen[x as usize] {
                        continue;
                    }
                    // The coset x·J; its minimal element is the representative.
                    let coset: Vec<u64> = subgroup.iter().map(|&j| field.mul(x, j)).collect();
                    let rep = *coset.iter().min().expect("cosets are non-empty");
                    for &c in &coset {
                        seen[c as usize] = true;
                    }
                    for &r in &residues {
                        selected.push(field.mul(rep, r));
                    }
                }
                // H_0 joins the family only under Strategy 2 with (p−1)/2
                // even; λ and −λ are nonresidues then, so no selected
                // translate conflicts with it (Section 3.2.1).
                if matches!(
                    self,
                    Strategy::OddSum {
                        include_zero: true,
                        ..
                    }
                ) {
                    selected.push(0);
                }
                selected.sort_unstable();
                selected
            }
        }
    }

    /// The translates y whose H_y may share an edge with H_x under this
    /// strategy (Lemma 3.4): {f(x), 2x − f(x)} ∪ {y : x ∈ {f(y), 2y − f(y)}}.
    /// Used to regenerate the conflict structure of Figure 3.2.
    #[must_use]
    pub fn conflict_partners(&self, field: &GField, x: u64) -> Vec<u64> {
        let two = field.embed_int(2);
        let mut partners = vec![
            self.f_value(field, x),
            field.sub(field.mul(two, x), self.f_value(field, x)),
        ];
        for y in field.elements() {
            if y == x {
                continue;
            }
            let fy = self.f_value(field, y);
            if x == fy || x == field.sub(field.mul(two, y), fy) {
                partners.push(y);
            }
        }
        partners.retain(|&y| y != x);
        partners.sort_unstable();
        partners.dedup();
        partners
    }
}

/// The Rees product of two Hamiltonian cycles given as circular symbol
/// sequences: A over Z_s (length s^n) and B over Z_t (length t^n) with
/// gcd(s,t) = 1 produce the sequence whose i-th symbol is `a_i·t + b_i`
/// (indices cyclic), a Hamiltonian cycle of B(st, n) (Lemma 3.6).
#[must_use]
pub fn rees_product(t: u64, a: &[u64], b: &[u64]) -> Vec<u64> {
    let len = a.len() * b.len();
    (0..len)
        .map(|i| a[i % a.len()] * t + b[i % b.len()])
        .collect()
}

/// Constructs ψ(d) pairwise edge-disjoint Hamiltonian cycles of B(d,n) as
/// circular symbol sequences (length d^n each). Prime-power alphabets use
/// Strategies 1–3; composite alphabets recurse through the Rees product.
#[must_use]
pub fn construct_symbol_family(d: u64, n: u32) -> Vec<Vec<u64>> {
    assert!(
        d >= 2 && n >= 2,
        "disjoint-HC construction requires d >= 2 and n >= 2"
    );
    let factors = factorize(d);
    if factors.len() == 1 {
        return prime_power_symbol_family(d, n);
    }
    // Split off the largest prime-power factor and recurse (Proposition 3.2).
    let (p, e) = *factors.last().expect("composite numbers have factors");
    let t = pow(p, e);
    let s = d / t;
    let a_family = construct_symbol_family(s, n);
    let b_family = construct_symbol_family(t, n);
    let mut out = Vec::with_capacity(a_family.len() * b_family.len());
    for a in &a_family {
        for b in &b_family {
            out.push(rees_product(t, a, b));
        }
    }
    out
}

/// The prime-power case of [`construct_symbol_family`].
fn prime_power_symbol_family(d: u64, n: u32) -> Vec<Vec<u64>> {
    let family = MaximalCycleFamily::new(d, n);
    let field = family.field().clone();
    let strategy = Strategy::select(field.characteristic());
    let selected = strategy.selected_translates(&field);
    selected
        .iter()
        .map(|&s| {
            let h = family.hamiltonian_with_f(s, strategy.f_value(&field, s));
            symbols_from_nodes(family.space(), &h)
        })
        .collect()
}

/// A family of pairwise edge-disjoint Hamiltonian cycles of B(d,n).
#[derive(Clone, Debug)]
pub struct DisjointHamiltonianCycles {
    d: u64,
    n: u32,
    cycles: Vec<Vec<usize>>,
}

impl DisjointHamiltonianCycles {
    /// Constructs ψ(d) pairwise edge-disjoint Hamiltonian cycles of B(d,n)
    /// (Propositions 3.1 and 3.2).
    ///
    /// # Panics
    /// Panics if `d < 2` or `n < 2`.
    #[must_use]
    pub fn construct(d: u64, n: u32) -> Self {
        let space = WordSpace::new(d, n);
        let cycles = construct_symbol_family(d, n)
            .into_iter()
            .map(|symbols| nodes_from_symbols(space, &symbols))
            .collect();
        DisjointHamiltonianCycles { d, n, cycles }
    }

    /// Alphabet size d.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// Word length n.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The cycles, each a permutation of all d^n node ids.
    #[must_use]
    pub fn cycles(&self) -> &[Vec<usize>] {
        &self.cycles
    }

    /// The number of cycles (equal to ψ(d)).
    #[must_use]
    pub fn count(&self) -> usize {
        self.cycles.len()
    }

    /// Consumes the family, returning the cycles.
    #[must_use]
    pub fn into_cycles(self) -> Vec<Vec<usize>> {
        self.cycles
    }

    /// The cycles as circular symbol sequences (de Bruijn-like sequences in
    /// which every (n+1)-window is distinct across the whole family).
    #[must_use]
    pub fn symbol_sequences(&self) -> Vec<Vec<u64>> {
        let space = WordSpace::new(self.d, self.n);
        self.cycles
            .iter()
            .map(|c| symbols_from_nodes(space, c))
            .collect()
    }

    /// Returns the first cycle that avoids every edge in `faulty_edges`
    /// (directed node pairs), if any. With at most ψ(d) − 1 faulty edges one
    /// always exists (the Proposition 3.4 argument).
    #[must_use]
    pub fn fault_free_cycle(&self, faulty_edges: &[(usize, usize)]) -> Option<&Vec<usize>> {
        use std::collections::HashSet;
        let faults: HashSet<(usize, usize)> = faulty_edges.iter().copied().collect();
        self.cycles.iter().find(|cycle| {
            (0..cycle.len()).all(|i| {
                let e = (cycle[i], cycle[(i + 1) % cycle.len()]);
                !faults.contains(&e)
            })
        })
    }

    /// Sanity helper: the expected family size ψ(d).
    #[must_use]
    pub fn expected_count(d: u64) -> u64 {
        psi(d)
    }
}

/// Verifies that the translates {s + C} of a maximal-cycle family partition
/// the non-loop edges of B(d,n) (Lemma 3.3 plus a counting argument).
/// Exposed for tests and the ablation benchmarks.
#[must_use]
pub fn translates_partition_edges(family: &MaximalCycleFamily) -> bool {
    let d = family.d();
    let space = family.space();
    let mut seen: HashMap<(usize, usize), u32> = HashMap::new();
    for s in 0..d {
        let nodes = family.translate_nodes(s);
        for i in 0..nodes.len() {
            let e = (nodes[i], nodes[(i + 1) % nodes.len()]);
            *seen.entry(e).or_insert(0) += 1;
        }
    }
    // Every edge must appear exactly once, and the total count must be the
    // number of non-loop edges d(d^n − 1).
    seen.values().all(|&c| c == 1)
        && seen.len() as u64 == d * (space.count() - 1)
        && seen.keys().all(|&(u, v)| u != v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::{all_pairwise_edge_disjoint, is_hamiltonian_cycle};
    use dbg_graph::DeBruijn;

    #[test]
    fn translates_are_cycles_missing_only_sn() {
        for (d, n) in [(2u64, 4u32), (3, 3), (4, 2), (5, 2)] {
            let family = MaximalCycleFamily::new(d, n);
            let g = DeBruijn::new(d, n);
            for s in 0..d {
                let nodes = family.translate_nodes(s);
                assert_eq!(nodes.len() as u64, family.space().count() - 1);
                // All nodes distinct, none equal to s^n, consecutive pairs are edges.
                let sn = family.space().constant(s) as usize;
                let mut sorted = nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), nodes.len());
                assert!(!nodes.contains(&sn));
                for i in 0..nodes.len() {
                    assert!(g.is_edge(nodes[i], nodes[(i + 1) % nodes.len()]));
                }
            }
        }
    }

    #[test]
    fn lemma_3_3_translates_partition_non_loop_edges() {
        for (d, n) in [(2u64, 3u32), (3, 3), (4, 2), (5, 2), (7, 2)] {
            let family = MaximalCycleFamily::new(d, n);
            assert!(translates_partition_edges(&family), "d={d} n={n}");
        }
    }

    #[test]
    fn hamiltonian_upgrade_produces_hamiltonian_cycles() {
        for (d, n) in [(3u64, 3u32), (4, 2), (5, 2), (8, 2), (9, 2)] {
            let family = MaximalCycleFamily::new(d, n);
            let g = DeBruijn::new(d, n);
            let field = family.field().clone();
            for s in 0..d {
                // Any α ≠ s works for a single cycle.
                let alpha = field.elements().find(|&a| a != s).unwrap();
                let h = family.hamiltonian_with_alpha(s, alpha);
                assert!(is_hamiltonian_cycle(&g, &h), "d={d} n={n} s={s}");
            }
        }
    }

    #[test]
    fn replacement_edges_are_debruijn_edges_into_and_out_of_sn() {
        let family = MaximalCycleFamily::new(5, 2);
        let g = DeBruijn::new(5, 2);
        for s in 0..5 {
            for alpha in (0..5).filter(|&a| a != s) {
                let [e1, e2] = family.replacement_edges(s, alpha);
                assert!(g.is_edge(e1.0, e1.1));
                assert!(g.is_edge(e2.0, e2.1));
                assert_eq!(e1.1, family.space().constant(s) as usize);
                assert_eq!(e2.0, family.space().constant(s) as usize);
            }
        }
    }

    #[test]
    fn example_3_2_gf4_three_disjoint_hcs() {
        // B(4,2) admits 3 disjoint Hamiltonian cycles (Strategy 1).
        let dhc = DisjointHamiltonianCycles::construct(4, 2);
        assert_eq!(dhc.count() as u64, psi(4));
        assert_eq!(dhc.count(), 3);
        let g = DeBruijn::new(4, 2);
        for c in dhc.cycles() {
            assert!(is_hamiltonian_cycle(&g, c));
        }
        assert!(all_pairwise_edge_disjoint(dhc.cycles()));
    }

    #[test]
    fn example_3_4_gf5_two_disjoint_hcs() {
        let dhc = DisjointHamiltonianCycles::construct(5, 2);
        assert_eq!(dhc.count() as u64, psi(5));
        assert_eq!(dhc.count(), 2);
        let g = DeBruijn::new(5, 2);
        for c in dhc.cycles() {
            assert!(is_hamiltonian_cycle(&g, c));
        }
        assert!(all_pairwise_edge_disjoint(dhc.cycles()));
    }

    #[test]
    fn example_3_5_rees_product_matches_paper() {
        // A = [0,0,1,1] (HC of B(2,2)), B = [0,0,2,2,1,2,0,1,1] (HC of B(3,2)).
        let a = vec![0u64, 0, 1, 1];
        let b = vec![0u64, 0, 2, 2, 1, 2, 0, 1, 1];
        let ab = rees_product(3, &a, &b);
        let expected = vec![
            0u64, 0, 5, 5, 1, 2, 3, 4, 1, 0, 3, 5, 2, 1, 5, 3, 1, 1, 3, 3, 2, 2, 4, 5, 0, 1, 4, 3,
            0, 2, 5, 4, 2, 0, 4, 4,
        ];
        assert_eq!(ab, expected);
        // And it is a Hamiltonian cycle of B(6,2) (Lemma 3.6).
        let g = DeBruijn::new(6, 2);
        let nodes = nodes_from_symbols(WordSpace::new(6, 2), &ab);
        assert!(is_hamiltonian_cycle(&g, &nodes));
    }

    #[test]
    fn construction_matches_psi_and_is_disjoint() {
        for (d, n) in [
            (2u64, 3u32),
            (2, 5),
            (3, 3),
            (4, 3),
            (5, 2),
            (6, 2),
            (7, 2),
            (8, 2),
            (9, 2),
            (10, 2),
            (12, 2),
            (13, 2),
        ] {
            let dhc = DisjointHamiltonianCycles::construct(d, n);
            assert_eq!(dhc.count() as u64, psi(d), "count mismatch for d={d} n={n}");
            let g = DeBruijn::new(d, n);
            for c in dhc.cycles() {
                assert!(
                    is_hamiltonian_cycle(&g, c),
                    "non-Hamiltonian member for d={d} n={n}"
                );
            }
            assert!(
                all_pairwise_edge_disjoint(dhc.cycles()),
                "cycles not disjoint for d={d} n={n}"
            );
        }
    }

    #[test]
    fn strategy_2_includes_h0_for_13() {
        // d = 13: ψ = 7 = (13+1)/2, so the zero translate is part of the family.
        let field = GField::new(13);
        let strategy = Strategy::select(13);
        let selected = strategy.selected_translates(&field);
        assert_eq!(selected.len() as u64, psi(13));
        assert!(selected.contains(&0));
    }

    #[test]
    fn strategy_3_for_5_excludes_h0() {
        let field = GField::new(5);
        let strategy = Strategy::select(5);
        assert!(matches!(strategy, Strategy::OddPower { .. }));
        let selected = strategy.selected_translates(&field);
        assert_eq!(selected.len() as u64, psi(5));
        assert!(!selected.contains(&0));
        // The selected translates are the quadratic residues {1, 4}.
        assert_eq!(selected, vec![1, 4]);
    }

    #[test]
    fn figure_3_2_conflict_partners_for_13() {
        // Under Strategy 2 with λ = 7, H_x conflicts with 7x, 7^9 x, 7^{-1}x, 7^{-9}x.
        let field = GField::new(13);
        let strategy = Strategy::OddSum {
            lambda: 7,
            a: 1,
            b: 9,
            include_zero: true,
        };
        let partners = strategy.conflict_partners(&field, 1);
        let expected: Vec<u64> = {
            let mut v = vec![
                7,
                mod_pow(7, 9, 13),
                mod_pow(7, 11, 13), // 7^{-1}
                mod_pow(7, 3, 13),  // 7^{-9}
            ];
            v.sort_unstable();
            v.dedup();
            v
        };
        for e in &expected {
            assert!(partners.contains(e), "missing conflict partner {e}");
        }
        // H_0 conflicts only with H_λ and H_{-λ}.
        let zero_partners = strategy.conflict_partners(&field, 0);
        assert!(zero_partners.contains(&7));
        assert!(zero_partners.contains(&(13 - 7)));
    }

    #[test]
    fn selected_translates_never_conflict() {
        for d in [4u64, 5, 7, 8, 9, 11, 13, 16, 17, 25] {
            let field = GField::new(d);
            let strategy = Strategy::select(field.characteristic());
            let selected = strategy.selected_translates(&field);
            assert_eq!(selected.len() as u64, psi(d), "d={d}");
            for (i, &x) in selected.iter().enumerate() {
                let partners = strategy.conflict_partners(&field, x);
                for &y in &selected[i + 1..] {
                    assert!(
                        !partners.contains(&y),
                        "selected translates {x} and {y} conflict for d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_free_cycle_selection() {
        let dhc = DisjointHamiltonianCycles::construct(4, 2);
        // Fail one edge of the first cycle; another cycle must survive.
        let c0 = &dhc.cycles()[0];
        let fault = (c0[0], c0[1]);
        let survivor = dhc.fault_free_cycle(&[fault]).expect("psi(4)=3 > 1 fault");
        assert!((0..survivor.len())
            .all(|i| { (survivor[i], survivor[(i + 1) % survivor.len()]) != fault }));
        // Failing one edge from every cycle leaves nothing.
        let all_faults: Vec<(usize, usize)> = dhc.cycles().iter().map(|c| (c[0], c[1])).collect();
        assert!(dhc.fault_free_cycle(&all_faults).is_none());
    }
}
