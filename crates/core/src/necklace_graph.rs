//! The necklace adjacency graph N* (Section 2.2, Figure 2.3).
//!
//! N* has one node per non-faulty necklace of B(d,n) (restricted to the
//! surviving component B*), and a directed edge labeled `w` (a word of
//! length n−1) from `[X]` to `[Y]` whenever `αw ∈ [X]` and `βw ∈ [Y]` for
//! distinct symbols α ≠ β. The edge can be read as "leave `[X]` at node αw
//! and enter `[Y]` at node wβ"; every w-edge has an antiparallel twin.
//!
//! The FFC algorithm only ever needs the *spanning* structure of N*, which
//! it derives implicitly from a BFS of B* (see [`crate::ffc`]); this module
//! materialises the full graph for figure regeneration, diagnostics and
//! tests.

use std::collections::BTreeMap;

use dbg_graph::DeBruijn;
use dbg_necklace::NecklacePartition;

/// A labeled edge of N*: `from` and `to` are necklace ids, `label` is the
/// (n−1)-digit word w encoded in base d.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NecklaceEdge {
    /// Source necklace id.
    pub from: usize,
    /// Target necklace id.
    pub to: usize,
    /// The (n−1)-digit label w, encoded as a base-d integer.
    pub label: u64,
}

/// The necklace adjacency graph restricted to a set of live necklaces.
#[derive(Clone, Debug)]
pub struct NecklaceAdjacency {
    graph: DeBruijn,
    /// Necklace ids (into the partition) that participate, sorted ascending.
    live: Vec<usize>,
    /// All labeled edges among live necklaces.
    edges: Vec<NecklaceEdge>,
}

impl NecklaceAdjacency {
    /// Builds N* over the necklaces of `partition` for which `alive`
    /// returns true (typically: non-faulty necklaces inside B*).
    #[must_use]
    pub fn build<F: Fn(usize) -> bool>(
        graph: &DeBruijn,
        partition: &NecklacePartition,
        alive: F,
    ) -> Self {
        let space = graph.space();
        let d = graph.d();
        let suffix_count = space.msd_place(); // d^(n-1) possible labels w
        let live: Vec<usize> = (0..partition.len()).filter(|&id| alive(id)).collect();
        let is_live = {
            let mut mask = vec![false; partition.len()];
            for &id in &live {
                mask[id] = true;
            }
            mask
        };

        // For each label w, the nodes αw (α ∈ Z_d) are the possible exit
        // points; group the live ones by label and connect all pairs that
        // sit on distinct necklaces.
        let mut edges = Vec::new();
        for w in 0..suffix_count {
            // Node αw has code α·d^(n-1) + w.
            let members: Vec<(u64, usize)> = (0..d)
                .map(|alpha| alpha * suffix_count + w)
                .filter_map(|code| {
                    let id = partition.id_of(code);
                    is_live[id].then_some((code, id))
                })
                .collect();
            for &(_, from_id) in &members {
                for &(_, to_id) in &members {
                    if from_id != to_id {
                        edges.push(NecklaceEdge {
                            from: from_id,
                            to: to_id,
                            label: w,
                        });
                    }
                }
            }
        }
        NecklaceAdjacency {
            graph: *graph,
            live,
            edges,
        }
    }

    /// The live necklace ids (ascending).
    #[must_use]
    pub fn live_necklaces(&self) -> &[usize] {
        &self.live
    }

    /// All labeled edges.
    #[must_use]
    pub fn edges(&self) -> &[NecklaceEdge] {
        &self.edges
    }

    /// The labels of edges between two necklaces (either direction gives the
    /// same set, since w-edges come in antiparallel pairs).
    #[must_use]
    pub fn labels_between(&self, a: usize, b: usize) -> Vec<u64> {
        self.edges
            .iter()
            .filter(|e| e.from == a && e.to == b)
            .map(|e| e.label)
            .collect()
    }

    /// Whether the undirected version of N* is connected (every live
    /// necklace reachable from every other). When it is, the FFC algorithm
    /// can join all live necklaces into a single cycle.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.live.is_empty() {
            return true;
        }
        let index: BTreeMap<usize, usize> = self
            .live
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.live.len()];
        for e in &self.edges {
            adj[index[&e.from]].push(index[&e.to]);
        }
        let mut seen = vec![false; self.live.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.live.len()
    }

    /// Renders the graph in Graphviz DOT form with necklace names and edge
    /// labels (Figure 2.3 style). Antiparallel edges are collapsed to a
    /// single double-headed edge.
    #[must_use]
    pub fn to_dot(&self, partition: &NecklacePartition) -> String {
        let space = self.graph.space();
        let mut out = String::from("digraph \"N*\" {\n  node [shape=box];\n");
        for &id in &self.live {
            out.push_str(&format!(
                "  k{id} [label=\"{}\"];\n",
                partition.necklace(id).format(space)
            ));
        }
        let label_space = dbg_algebra::words::WordSpace::new(space.d(), space.n() - 1);
        let mut seen = std::collections::HashSet::new();
        for e in &self.edges {
            let key = if e.from < e.to {
                (e.from, e.to, e.label)
            } else {
                (e.to, e.from, e.label)
            };
            if !seen.insert(key) {
                continue;
            }
            out.push_str(&format!(
                "  k{} -> k{} [dir=both, label=\"{}\"];\n",
                key.0,
                key.1,
                label_space.format(e.label)
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_algebra::words::WordSpace;

    fn example_2_1_setup() -> (DeBruijn, NecklacePartition, Vec<bool>) {
        let g = DeBruijn::new(3, 3);
        let part = NecklacePartition::new(g.space());
        let faults = [g.node("020").unwrap() as u64, g.node("112").unwrap() as u64];
        let faulty = part.faulty_necklaces(faults);
        (g, part, faulty)
    }

    #[test]
    fn example_2_1_live_necklaces() {
        let (g, part, faulty) = example_2_1_setup();
        let adj = NecklaceAdjacency::build(&g, &part, |id| !faulty[id]);
        // Figure 2.3 shows 9 necklaces.
        assert_eq!(adj.live_necklaces().len(), 9);
        let s = g.space();
        let names: Vec<String> = adj
            .live_necklaces()
            .iter()
            .map(|&id| part.necklace(id).format(s))
            .collect();
        for expected in [
            "[000]", "[001]", "[011]", "[111]", "[012]", "[021]", "[022]", "[122]", "[222]",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn example_2_1_edges_match_figure_2_3() {
        let (g, part, faulty) = example_2_1_setup();
        let adj = NecklaceAdjacency::build(&g, &part, |id| !faulty[id]);
        let s = g.space();
        let label_space = WordSpace::new(3, 2);
        let id_of = |name: &str| {
            let code = s.parse(name).unwrap();
            part.id_of(code)
        };
        let labels = |a: &str, b: &str| -> Vec<String> {
            let mut l: Vec<String> = adj
                .labels_between(id_of(a), id_of(b))
                .into_iter()
                .map(|w| label_space.format(w))
                .collect();
            l.sort();
            l
        };
        // A few edges read off Figure 2.3 / derived from the N* definition.
        assert_eq!(labels("000", "001"), vec!["00"]);
        assert_eq!(labels("001", "011"), vec!["01", "10"]);
        assert_eq!(labels("011", "111"), vec!["11"]);
        assert_eq!(labels("012", "122"), vec!["12"]);
        assert_eq!(labels("122", "222"), vec!["22"]);
        assert_eq!(labels("001", "021"), vec!["10"]);
        assert_eq!(labels("011", "021"), vec!["10"]);
        assert_eq!(labels("021", "022"), vec!["02"]);
        // Edges are symmetric.
        assert_eq!(labels("001", "000"), vec!["00"]);
        // No edge between necklaces that share no suffix pair.
        assert!(labels("000", "111").is_empty());
        assert!(adj.is_connected());
    }

    #[test]
    fn full_graph_without_faults_is_connected() {
        for (d, n) in [(2u64, 4u32), (3, 3), (4, 2)] {
            let g = DeBruijn::new(d, n);
            let part = NecklacePartition::new(g.space());
            let adj = NecklaceAdjacency::build(&g, &part, |_| true);
            assert!(adj.is_connected(), "N* of B({d},{n}) should be connected");
            assert_eq!(adj.live_necklaces().len(), part.len());
        }
    }

    #[test]
    fn edges_come_in_antiparallel_pairs() {
        let (g, part, faulty) = example_2_1_setup();
        let adj = NecklaceAdjacency::build(&g, &part, |id| !faulty[id]);
        for e in adj.edges() {
            assert!(
                adj.edges()
                    .iter()
                    .any(|r| r.from == e.to && r.to == e.from && r.label == e.label),
                "missing antiparallel twin of {e:?}"
            );
        }
        let _ = part;
    }

    #[test]
    fn dot_export_mentions_every_live_necklace() {
        let (g, part, faulty) = example_2_1_setup();
        let adj = NecklaceAdjacency::build(&g, &part, |id| !faulty[id]);
        let dot = adj.to_dot(&part);
        assert!(dot.contains("[000]"));
        assert!(dot.contains("[122]"));
        assert!(!dot.contains("[002]"), "faulty necklace should not appear");
        assert!(!dot.contains("[112]"), "faulty necklace should not appear");
    }
}
