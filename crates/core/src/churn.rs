//! Fault-churn trace generation and replay against a [`RingMaintainer`].
//!
//! The paper's reconfiguration story (Section 2.5) is about rings that
//! survive an *evolving* fault environment, not a single static fault set.
//! This module models that regime as a timed trace of
//! [`FaultEvent`] batches — Poisson fault arrivals, correlated k-bursts,
//! occasional link faults, and bounded-repair-time departures — and
//! replays the trace through a [`RingMaintainer`], measuring time-to-repair
//! percentiles and the fraction of (simulated) wall time the embedding
//! spends degraded below full tolerance.
//!
//! Traces are deterministic given [`ChurnPlan::seed`], so replay results
//! are reproducible and comparable across shard counts and machines.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ffc::{FaultEvent, Ffc, RepairError, RepairOutcome, RingMaintainer};

/// Draws a uniform f64 in `[0, 1)` from the vendored generator (which only
/// exposes integer ranges) using the top 53 bits of one output word.
#[inline]
fn uniform01(rng: &mut StdRng) -> f64 {
    rng.gen_range(0u64..(1u64 << 53)) as f64 / (1u64 << 53) as f64
}

/// One timed step of a churn trace: a batch of simultaneous fault events.
///
/// Arrival bursts produce batches of several events at one instant;
/// departures (repairs completing) are singleton batches.
#[derive(Clone, Debug)]
pub struct ChurnStep {
    /// Simulated time of the batch, in abstract time units.
    pub time: f64,
    /// The simultaneous events, applied as one [`RingMaintainer::apply_batch`].
    pub batch: Vec<FaultEvent>,
}

/// A deterministic arrival/departure process over a de Bruijn network.
///
/// Arrivals follow a Poisson process (exponential inter-arrival gaps of
/// mean [`ChurnPlan::mean_interarrival`]); with probability
/// [`ChurnPlan::burst_prob`] an arrival is a correlated burst of
/// [`ChurnPlan::burst_size`] simultaneous faults. Each individual fault is
/// a link fault with probability [`ChurnPlan::edge_fault_prob`], otherwise
/// a node fault. Every fault schedules its own repair (the mirroring
/// `NodeUp`/`EdgeUp`) after a uniform delay in
/// `[repair_min, repair_max)` time units.
#[derive(Clone, Copy, Debug)]
pub struct ChurnPlan {
    /// RNG seed; the trace is a pure function of the plan and the graph.
    pub seed: u64,
    /// Number of arrival *events* (a burst counts as one arrival).
    pub arrivals: usize,
    /// Mean exponential gap between arrivals, in time units.
    pub mean_interarrival: f64,
    /// Minimum repair (fault-holding) time.
    pub repair_min: f64,
    /// Maximum repair time (exclusive).
    pub repair_max: f64,
    /// Number of simultaneous faults in a correlated burst.
    pub burst_size: usize,
    /// Probability that an arrival is a burst rather than a single fault.
    pub burst_prob: f64,
    /// Probability that an individual fault hits a link instead of a node.
    pub edge_fault_prob: f64,
}

impl ChurnPlan {
    /// A moderate default process: 60 arrivals, 25% bursts of 4,
    /// 20% link faults, repairs completing after 2–6 mean gaps.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChurnPlan {
            seed,
            arrivals: 60,
            mean_interarrival: 1.0,
            repair_min: 2.0,
            repair_max: 6.0,
            burst_size: 4,
            burst_prob: 0.25,
            edge_fault_prob: 0.2,
        }
    }

    /// Sets the number of arrival events.
    #[must_use]
    pub fn arrivals(mut self, arrivals: usize) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the correlated-burst shape: each burst brings `size`
    /// simultaneous faults with probability `prob` per arrival.
    #[must_use]
    pub fn bursts(mut self, size: usize, prob: f64) -> Self {
        self.burst_size = size.max(1);
        self.burst_prob = prob;
        self
    }

    /// Sets the probability that a fault hits a link instead of a node.
    #[must_use]
    pub fn edge_fault_prob(mut self, p: f64) -> Self {
        self.edge_fault_prob = p;
        self
    }

    /// Sets the uniform repair-time window `[min, max)`.
    #[must_use]
    pub fn repair_window(mut self, min: f64, max: f64) -> Self {
        self.repair_min = min;
        self.repair_max = max.max(min + f64::EPSILON);
        self
    }

    /// Generates the timed trace for `ffc`: arrival batches interleaved
    /// with their departure events, sorted by simulated time.
    ///
    /// Faults are drawn uniformly over nodes (and over the `d` out-edges
    /// of a uniformly drawn source for link faults); redundant events are
    /// left in the trace on purpose — [`RingMaintainer::apply_batch`]
    /// treats them as set-semantics no-ops, which is part of what churn
    /// replay exercises.
    #[must_use]
    pub fn generate(&self, ffc: &Ffc) -> Vec<ChurnStep> {
        let n_nodes = ffc.graph().len();
        let d = ffc.graph().d() as usize;
        let suffix = n_nodes / d;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut steps: Vec<ChurnStep> = Vec::new();
        let mut t = 0.0_f64;
        for _ in 0..self.arrivals {
            t += -self.mean_interarrival * (1.0 - uniform01(&mut rng)).ln();
            let k = if rng.gen_bool(self.burst_prob) {
                self.burst_size
            } else {
                1
            };
            let mut batch = Vec::with_capacity(k);
            for _ in 0..k {
                let (down, up) = if rng.gen_bool(self.edge_fault_prob) {
                    let u = rng.gen_range(0..n_nodes);
                    let w = (u % suffix) * d + rng.gen_range(0..d);
                    (FaultEvent::EdgeDown(u, w), FaultEvent::EdgeUp(u, w))
                } else {
                    let v = rng.gen_range(0..n_nodes);
                    (FaultEvent::NodeDown(v), FaultEvent::NodeUp(v))
                };
                batch.push(down);
                let dwell =
                    self.repair_min + uniform01(&mut rng) * (self.repair_max - self.repair_min);
                steps.push(ChurnStep {
                    time: t + dwell,
                    batch: vec![up],
                });
            }
            steps.push(ChurnStep { time: t, batch });
        }
        steps.sort_by(|a, b| a.time.total_cmp(&b.time));
        steps
    }
}

/// Aggregate results of replaying a churn trace through a maintainer.
#[derive(Clone, Debug, Default)]
pub struct ChurnReport {
    /// Batches applied (arrival bursts and departures alike).
    pub steps: usize,
    /// Individual fault events across all batches.
    pub events: usize,
    /// Wall-clock repair latency of each batch, in nanoseconds.
    pub repair_ns: Vec<u64>,
    /// Simulated time spent with the embedding degraded (reduced ring).
    pub degraded_time: f64,
    /// Simulated time spent infeasible (no live necklace at all).
    pub infeasible_time: f64,
    /// Total simulated time of the trace.
    pub total_time: f64,
    /// Largest number of live-but-excluded nodes seen in any degraded state.
    pub worst_excluded: usize,
    /// Steps that ended in each outcome class: `[repaired, degraded, infeasible]`.
    pub outcome_counts: [usize; 3],
}

impl ChurnReport {
    fn percentile_ns(&self, p: f64) -> u64 {
        if self.repair_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.repair_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Median per-batch repair latency.
    #[must_use]
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 99th-percentile per-batch repair latency.
    #[must_use]
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }

    /// Fraction of simulated time spent degraded (or infeasible),
    /// time-weighted over the trace.
    #[must_use]
    pub fn degraded_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        (self.degraded_time + self.infeasible_time) / self.total_time
    }
}

/// Replays a churn trace through `maint`, resetting it to the fault-free
/// embedding first, and reports repair latencies and degraded-time
/// fractions. `observe` sees every `(step, outcome, maintainer)` triple as
/// it happens — pass `|_, _, _| {}` when only the report matters.
///
/// Degraded/infeasible time is accounted between consecutive step times
/// under the state left by the *earlier* step, so a burst that degrades
/// the ring charges the interval until the repair that lifts it.
///
/// # Errors
/// Propagates any [`RepairError`] from the maintainer — a generated trace
/// is always in-range and edge-valid for its own `ffc`, so an error here
/// means the trace and graph are mismatched.
pub fn replay_churn<F>(
    ffc: &Ffc,
    maint: &mut RingMaintainer,
    steps: &[ChurnStep],
    mut observe: F,
) -> Result<ChurnReport, RepairError>
where
    F: FnMut(&ChurnStep, &RepairOutcome, &RingMaintainer),
{
    let mut report = ChurnReport::default();
    let mut outcome = maint.reset(ffc, &[])?;
    let mut prev_time = 0.0_f64;
    for step in steps {
        let span = (step.time - prev_time).max(0.0);
        match outcome {
            RepairOutcome::Repaired(_) => {}
            RepairOutcome::Degraded { .. } => report.degraded_time += span,
            RepairOutcome::Infeasible { .. } => report.infeasible_time += span,
        }
        prev_time = step.time;
        let start = Instant::now();
        outcome = maint.apply_batch(ffc, &step.batch)?;
        let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        report.repair_ns.push(ns);
        report.steps += 1;
        report.events += step.batch.len();
        match outcome {
            RepairOutcome::Repaired(_) => report.outcome_counts[0] += 1,
            RepairOutcome::Degraded { excluded, .. } => {
                report.outcome_counts[1] += 1;
                report.worst_excluded = report.worst_excluded.max(excluded);
            }
            RepairOutcome::Infeasible { .. } => report.outcome_counts[2] += 1,
        }
        observe(step, &outcome, maint);
    }
    report.total_time = prev_time;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffc::EmbedScratch;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let ffc = Ffc::new(2, 8);
        let plan = ChurnPlan::new(0xC0FFEE).arrivals(40);
        let a = plan.generate(&ffc);
        let b = plan.generate(&ffc);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time.to_bits(), y.time.to_bits());
            assert_eq!(x.batch, y.batch);
        }
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        // Every arrival schedules its mirror departure, so downs == ups.
        let downs = a
            .iter()
            .flat_map(|s| &s.batch)
            .filter(|e| matches!(e, FaultEvent::NodeDown(_) | FaultEvent::EdgeDown(..)))
            .count();
        let ups = a.iter().map(|s| s.batch.len()).sum::<usize>() - downs;
        assert_eq!(downs, ups);
    }

    #[test]
    fn replay_matches_from_scratch_at_every_step() {
        let ffc = Ffc::new(2, 9);
        let plan = ChurnPlan::new(7).arrivals(30).bursts(3, 0.3);
        let steps = plan.generate(&ffc);
        let mut maint = RingMaintainer::new();
        let mut scratch = EmbedScratch::new();
        let report = replay_churn(&ffc, &mut maint, &steps, |_, outcome, m| {
            let want = ffc.embed_stats_into(&mut scratch, m.session().faulty_nodes());
            assert_eq!(outcome.stats(), want);
        })
        .expect("generated trace is valid");
        assert_eq!(report.steps, steps.len());
        assert!(report.p50_ns() <= report.p99_ns());
        assert!(report.degraded_fraction() >= 0.0 && report.degraded_fraction() <= 1.0);
        // The trace ends with all repairs scheduled, so after replay the
        // maintainer must be back to (or still at) a repaired full ring.
        assert!(maint.outcome().is_repaired());
    }
}
