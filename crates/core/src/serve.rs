//! Ring-as-a-service: wait-free reads under live repair.
//!
//! The paper's premise is that the embedded ring keeps *carrying traffic*
//! while faults land. [`RingService`] makes that real: a writer thread
//! drains a bounded [`FaultEvent`] queue through
//! [`RingMaintainer::apply_batch`] (coalescing a backlog into one fused
//! batch), publishes an immutable [`RingSnapshot`] per absorbed batch into
//! an [`epoch::EpochCell`], and any number of [`ReaderHandle`]s answer
//! `successor` / `contains` / `ring_segment` / `stats` against the latest
//! published generation — without ever blocking on a repair.
//!
//! The read fast path is wait-free: a handle caches `(epoch, Arc<snapshot>)`
//! and each query costs one atomic epoch load to detect staleness; only
//! when the writer has published something newer does the handle take the
//! epoch cell's slot lock to swap its cached `Arc` (and that lock is
//! uncontended unless the writer lapped the whole slot ring). Snapshots
//! are copy-on-publish ([`crate::ffc::SnapshotPublisher`]): a repair that
//! only touched the membership bitmap republishes the ring wiring by
//! refcount, and retired buffers recycle once their last reader drops.
//!
//! Consistency model: readers are **eventually consistent with monotone
//! generations** — every snapshot a reader observes is the *exact* output
//! of a from-scratch embed of some prefix of the applied event sequence
//! (pinned by the linearizability stress tests in `tests/serve_props.rs`),
//! and the sequence of epochs one handle observes never decreases. Queries
//! answered from one snapshot are mutually consistent by construction
//! (immutability), even while the writer races ahead.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{self, TryRecvError, TrySendError};
use epoch::EpochCell;

use crate::ffc::session::validate_event;
use crate::ffc::{
    EmbedStats, FaultEvent, Ffc, LookupError, RepairError, RepairOutcome, RepairStats,
    RingMaintainer, RingSnapshot, SnapshotPublisher,
};

/// Tuning knobs for [`RingService::start`]. The defaults serve a heavy
/// churn stream on one maintainer thread: a 1024-event queue, up to
/// 64 events coalesced per repair batch, single-shard rebuilds.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Capacity of the bounded fault-event queue (clamped to ≥ 1).
    /// [`RingService::submit`] blocks when it is full;
    /// [`RingService::try_submit`] reports [`SubmitError::Backlog`].
    pub queue_cap: usize,
    /// Maximum events drained into one [`RingMaintainer::apply_batch`]
    /// call (clamped to ≥ 1). Coalescing under backlog trades snapshot
    /// granularity for repair throughput: k queued events cost one fused
    /// delta pass and one publication instead of k.
    pub coalesce: usize,
    /// Requested shard count for the maintainer's rebuild fallbacks.
    /// Clamped per rebuild through [`crate::bitreach::effective_shards`]
    /// (host core count, graph size); [`ServiceReport::effective_shards`]
    /// records the resolved value.
    pub shards: usize,
    /// Slot count of the epoch publication cell (how many recent
    /// generations stay pinned by the cell itself).
    pub slots: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_cap: 1024,
            coalesce: 64,
            shards: 1,
            slots: epoch::DEFAULT_SLOTS,
        }
    }
}

/// A rejected event submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The event failed pre-flight validation (same checks as
    /// [`RingMaintainer::apply_batch`]); it was **not** enqueued.
    Invalid(RepairError),
    /// Non-blocking submission found the queue full; the event was not
    /// enqueued. Blocking [`RingService::submit`] never reports this.
    Backlog,
    /// The writer thread has shut down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(e) => write!(f, "invalid fault event: {e}"),
            SubmitError::Backlog => write!(f, "fault-event queue is full"),
            SubmitError::Closed => write!(f, "ring service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// What the writer thread did over the service's lifetime, returned by
/// [`RingService::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct ServiceReport {
    /// Repair batches applied (= publications triggered by events).
    pub batches: u64,
    /// Fault events absorbed.
    pub events: u64,
    /// Publications (batches + the initial one).
    pub publications: u64,
    /// Publications that shared the ring wiring by refcount.
    pub shared_ring: u64,
    /// Publications that shared the membership bitmap by refcount.
    pub shared_membership: u64,
    /// Publications that shared the broadcast level group by refcount.
    pub shared_levels: u64,
    /// Retired snapshot buffers recycled into the publisher's pools.
    pub reclaimed_buffers: u64,
    /// Per-batch repair times (the `apply_batch` call), nanoseconds.
    pub repair_ns: Vec<u64>,
    /// Per-batch publication times (snapshot build + epoch publish),
    /// nanoseconds.
    pub publish_ns: Vec<u64>,
    /// Delta-vs-rebuild counts from the maintainer.
    pub repairs: RepairStats,
    /// Outcome after the last absorbed batch (`None` if no event arrived).
    pub final_outcome: Option<RepairOutcome>,
    /// Shard count the maintainer's rebuilds actually ran with:
    /// [`ServeOptions::shards`] folded through
    /// [`crate::bitreach::effective_shards`].
    pub effective_shards: usize,
}

impl ServiceReport {
    /// Events absorbed beyond one per batch — the coalescing win.
    #[must_use]
    pub fn coalesced_events(&self) -> u64 {
        self.events - self.batches
    }

    /// The `q`-quantile (0.0 ..= 1.0) of per-batch publication times, ns.
    #[must_use]
    pub fn publish_quantile_ns(&self, q: f64) -> u64 {
        quantile(&self.publish_ns, q)
    }

    /// The `q`-quantile (0.0 ..= 1.0) of per-batch repair times, ns.
    #[must_use]
    pub fn repair_quantile_ns(&self, q: f64) -> u64 {
        quantile(&self.repair_ns, q)
    }
}

fn quantile(samples: &[u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// A cheap per-reader cursor over the service's published snapshots: a
/// cached `(epoch, Arc<RingSnapshot>)` pair refreshed with one atomic load
/// per query. Clone one per reader thread ([`RingService::reader`]); the
/// handle stays valid after the service shuts down (it keeps serving the
/// final generation).
#[derive(Clone, Debug)]
pub struct ReaderHandle {
    cell: Arc<EpochCell<RingSnapshot>>,
    epoch: u64,
    snap: Arc<RingSnapshot>,
    reloads: u64,
}

impl ReaderHandle {
    fn new(cell: Arc<EpochCell<RingSnapshot>>) -> Self {
        let (epoch, snap) = cell.load();
        ReaderHandle {
            cell,
            epoch,
            snap,
            reloads: 0,
        }
    }

    /// Re-reads the epoch cell if the writer published a newer generation;
    /// one atomic load when nothing changed. The cached epoch is strictly
    /// monotone: a concurrent wrap-around can never move a handle to an
    /// older generation.
    pub fn refresh(&mut self) -> &Arc<RingSnapshot> {
        let current = self.cell.epoch();
        if current != self.epoch {
            let (epoch, snap) = self.cell.load();
            if epoch > self.epoch {
                self.epoch = epoch;
                self.snap = snap;
                self.reloads += 1;
            }
        }
        &self.snap
    }

    /// The latest snapshot (refreshing first) — hold the returned `Arc`
    /// for a multi-query consistent view.
    pub fn snapshot(&mut self) -> Arc<RingSnapshot> {
        Arc::clone(self.refresh())
    }

    /// The cached snapshot *without* refreshing — the frozen-baseline
    /// accessor: a reader that only ever calls this serves its pinned
    /// generation forever, never paying the epoch check.
    #[must_use]
    pub fn pinned(&self) -> &Arc<RingSnapshot> {
        &self.snap
    }

    /// The epoch of the cached snapshot.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many times this handle swapped to a newer generation.
    #[must_use]
    pub fn reloads(&self) -> u64 {
        self.reloads
    }

    /// Ring successor of `u` against the latest snapshot.
    ///
    /// # Errors
    /// See [`RingSnapshot::successor`].
    pub fn successor(&mut self, u: usize) -> Result<usize, LookupError> {
        self.refresh().successor(u)
    }

    /// Ring membership of `u` against the latest snapshot.
    ///
    /// # Errors
    /// See [`RingSnapshot::contains`].
    pub fn contains(&mut self, u: usize) -> Result<bool, LookupError> {
        self.refresh().contains(u)
    }

    /// Broadcast level of `u` against the latest snapshot (`None` when
    /// off the broadcast tree).
    ///
    /// # Errors
    /// See [`RingSnapshot::broadcast_level`].
    pub fn broadcast_level(&mut self, u: usize) -> Result<Option<u32>, LookupError> {
        self.refresh().broadcast_level(u)
    }

    /// Walks `len` ring nodes from `u` against the latest snapshot.
    ///
    /// # Errors
    /// See [`RingSnapshot::ring_segment`].
    pub fn ring_segment(
        &mut self,
        u: usize,
        len: usize,
        out: &mut Vec<usize>,
    ) -> Result<usize, LookupError> {
        self.refresh().ring_segment(u, len, out)
    }

    /// Stats of the latest snapshot.
    pub fn stats(&mut self) -> EmbedStats {
        self.refresh().stats()
    }
}

/// A long-lived ring service: one writer thread owning the
/// [`RingMaintainer`], an epoch cell of published [`RingSnapshot`]s, and
/// as many [`ReaderHandle`]s as there are readers. See the module docs for
/// the consistency model.
#[derive(Debug)]
pub struct RingService {
    cell: Arc<EpochCell<RingSnapshot>>,
    tx: Option<channel::Sender<FaultEvent>>,
    writer: Option<JoinHandle<ServiceReport>>,
    d: usize,
    suffix: usize,
    n_nodes: usize,
}

impl RingService {
    /// Builds the initial embedding for `initial_faults` (one maintainer
    /// reset), publishes generation 1 and spawns the writer thread. The
    /// `Ffc` is shared with the writer, hence the `Arc`.
    ///
    /// # Errors
    /// [`RepairError::NodeOutOfRange`] if an initial fault id is not a
    /// node of `ffc` (same contract as [`RingMaintainer::reset`]).
    pub fn start(
        ffc: Arc<Ffc>,
        initial_faults: &[usize],
        opts: ServeOptions,
    ) -> Result<RingService, RepairError> {
        let (d, n_nodes) = (ffc.graph().d() as usize, ffc.graph().len());
        let suffix = n_nodes / d;
        let mut maint = RingMaintainer::with_shards(opts.shards.max(1));
        maint.reset(&ffc, initial_faults)?;
        let mut publisher = SnapshotPublisher::new();
        let first = maint.publish(&mut publisher, 0)?;
        let cell = Arc::new(EpochCell::with_slots(first, opts.slots));
        let (tx, rx) = channel::bounded::<FaultEvent>(opts.queue_cap.max(1));
        let writer = {
            let cell = Arc::clone(&cell);
            let coalesce = opts.coalesce.max(1);
            std::thread::spawn(move || writer_loop(&ffc, maint, publisher, &cell, &rx, coalesce))
        };
        Ok(RingService {
            cell,
            tx: Some(tx),
            writer: Some(writer),
            d,
            suffix,
            n_nodes,
        })
    }

    /// A fresh reader cursor positioned at the latest generation.
    #[must_use]
    pub fn reader(&self) -> ReaderHandle {
        ReaderHandle::new(Arc::clone(&self.cell))
    }

    /// The current publication epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Events currently waiting in the queue.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.tx.as_ref().map_or(0, channel::Sender::len)
    }

    /// Validates and enqueues one fault event, blocking while the queue is
    /// full. Validation happens *here* (same checks as
    /// [`RingMaintainer::apply_batch`]) so a malformed event is rejected
    /// synchronously and the writer loop never sees it.
    ///
    /// # Errors
    /// [`SubmitError::Invalid`] for a malformed event,
    /// [`SubmitError::Closed`] after shutdown.
    pub fn submit(&self, ev: FaultEvent) -> Result<(), SubmitError> {
        validate_event(self.d, self.suffix, self.n_nodes, ev).map_err(SubmitError::Invalid)?;
        match &self.tx {
            Some(tx) => tx.send(ev).map_err(|_| SubmitError::Closed),
            None => Err(SubmitError::Closed),
        }
    }

    /// Non-blocking [`RingService::submit`].
    ///
    /// # Errors
    /// As [`RingService::submit`], plus [`SubmitError::Backlog`] when the
    /// queue is full.
    pub fn try_submit(&self, ev: FaultEvent) -> Result<(), SubmitError> {
        validate_event(self.d, self.suffix, self.n_nodes, ev).map_err(SubmitError::Invalid)?;
        match &self.tx {
            Some(tx) => tx.try_send(ev).map_err(|e| match e {
                TrySendError::Full(_) => SubmitError::Backlog,
                TrySendError::Disconnected(_) => SubmitError::Closed,
            }),
            None => Err(SubmitError::Closed),
        }
    }

    /// Closes the queue, waits for the writer to drain every already
    /// accepted event (each one still published), and returns its report.
    /// Reader handles keep serving the final generation afterwards.
    ///
    /// # Panics
    /// Propagates a writer-thread panic (which only a maintainer bug can
    /// cause — malformed events are rejected at submission).
    #[must_use]
    pub fn shutdown(mut self) -> ServiceReport {
        drop(self.tx.take());
        self.writer
            .take()
            // PANIC-OK: `shutdown` consumes `self` and `start` always sets
            // the handle, so the Option is `Some` exactly once here.
            .expect("writer joined once")
            .join()
            // PANIC-OK: the documented contract of `shutdown` — a writer
            // panic (only a maintainer bug can cause one) is propagated to
            // the caller, never swallowed.
            .expect("ring-service writer panicked")
    }
}

impl Drop for RingService {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// The writer loop: block on the queue, coalesce any backlog into one
/// batch, repair, publish, repeat — until every sender is gone and the
/// queue has drained.
fn writer_loop(
    ffc: &Ffc,
    mut maint: RingMaintainer,
    mut publisher: SnapshotPublisher,
    cell: &EpochCell<RingSnapshot>,
    rx: &channel::Receiver<FaultEvent>,
    coalesce: usize,
) -> ServiceReport {
    let mut report = ServiceReport::default();
    let mut batch: Vec<FaultEvent> = Vec::with_capacity(coalesce);
    let mut applied: u64 = 0;
    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < coalesce {
            match rx.try_recv() {
                Ok(ev) => batch.push(ev),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        let t0 = Instant::now();
        // Events were validated at submission against the same shape, so
        // the only errors left are maintainer bugs; surface those.
        let outcome = maint
            .apply_batch(ffc, &batch)
            // PANIC-OK: every event was validated at submission against
            // this same shape, so a failure here is a maintainer bug;
            // the panic is propagated to `shutdown` (see its contract).
            .expect("pre-validated batch must apply");
        let repaired = t0.elapsed().as_nanos() as u64;
        applied += batch.len() as u64;
        let t1 = Instant::now();
        let snap = maint
            .publish(&mut publisher, applied)
            // PANIC-OK: publish can only fail before the first embed, and
            // `start` embeds before the writer loop ever runs.
            .expect("session initialized at start");
        cell.publish(snap);
        let published = t1.elapsed().as_nanos() as u64;
        report.batches += 1;
        report.events += batch.len() as u64;
        report.repair_ns.push(repaired);
        report.publish_ns.push(published);
        report.final_outcome = Some(outcome);
    }
    report.publications = publisher.publications();
    report.shared_ring = publisher.shared_ring();
    report.shared_membership = publisher.shared_membership();
    report.shared_levels = publisher.shared_levels();
    report.reclaimed_buffers = publisher.reclaimed();
    report.repairs = maint.repairs();
    report.effective_shards = maint.effective_shards(ffc);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b25_service(opts: ServeOptions) -> RingService {
        RingService::start(Arc::new(Ffc::new(2, 5)), &[], opts).expect("start")
    }

    #[test]
    fn submit_rejects_malformed_events_synchronously() {
        let svc = b25_service(ServeOptions::default());
        let n = 32;
        assert_eq!(
            svc.submit(FaultEvent::NodeDown(n)),
            Err(SubmitError::Invalid(RepairError::NodeOutOfRange {
                node: n,
                n_nodes: n
            }))
        );
        assert_eq!(
            svc.try_submit(FaultEvent::EdgeDown(0, 5)),
            Err(SubmitError::Invalid(RepairError::NotAnEdge {
                from: 0,
                to: 5
            }))
        );
        // Nothing was enqueued, nothing published beyond the initial gen.
        let report = svc.shutdown();
        assert_eq!(report.events, 0);
        assert_eq!(report.publications, 1);
        assert!(report.final_outcome.is_none());
    }

    #[test]
    fn events_flow_through_to_published_snapshots() {
        let svc = b25_service(ServeOptions::default());
        let mut reader = svc.reader();
        assert_eq!(reader.epoch(), 1);
        let healthy_len = reader.snapshot().ring_len();
        svc.submit(FaultEvent::NodeDown(3)).expect("submit");
        svc.submit(FaultEvent::NodeUp(3)).expect("submit");
        let report = svc.shutdown();
        assert_eq!(report.events, 2);
        assert!(report.batches >= 1);
        assert_eq!(
            report.publications,
            report.batches + 1,
            "one publication per batch plus the initial one"
        );
        assert_eq!(report.repair_ns.len(), report.publish_ns.len());
        // B(2,5) is far below MIN_NODES_PER_SHARD: the heuristic folds
        // the requested single shard to exactly one effective shard.
        assert_eq!(report.effective_shards, 1);
        // After drain the fault set is empty again: the final snapshot is
        // the healthy ring and the reader observes it.
        let snap = reader.snapshot();
        assert_eq!(snap.applied_events(), 2);
        assert_eq!(snap.ring_len(), healthy_len);
        assert!(snap.outcome().is_repaired());
        assert!(reader.epoch() > 1);
    }

    #[test]
    fn coalescing_under_backlog_batches_events() {
        // A slow-to-start writer is not controllable; instead flood the
        // queue before the writer can drain it and check the accounting:
        // events ≥ batches always, and with 64-way coalescing a 200-event
        // flood cannot need 200 batches.
        let svc = b25_service(ServeOptions::default());
        for i in 0..100u64 {
            let v = (i % 16) as usize;
            let ev = if i % 2 == 0 {
                FaultEvent::NodeDown(v)
            } else {
                FaultEvent::NodeUp(v)
            };
            svc.submit(ev).expect("submit");
        }
        let report = svc.shutdown();
        assert_eq!(report.events, 100);
        assert_eq!(report.events, report.batches + report.coalesced_events());
        // Every batch took the delta or rebuild path, plus the reset —
        // except no-topology-change batches, which take neither.
        assert!(
            report.repairs.incremental + report.repairs.rebuilds <= report.batches as usize + 1
        );
    }

    #[test]
    fn readers_keep_serving_after_shutdown() {
        let svc = b25_service(ServeOptions::default());
        let mut reader = svc.reader();
        svc.submit(FaultEvent::NodeDown(7)).expect("submit");
        let _ = svc.shutdown();
        let snap = reader.snapshot();
        assert_eq!(snap.contains(7), Ok(false));
        assert!(snap.successor(0).is_ok());
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let report = ServiceReport {
            publish_ns: vec![50, 10, 40, 20, 30],
            ..ServiceReport::default()
        };
        assert_eq!(report.publish_quantile_ns(0.0), 10);
        assert_eq!(report.publish_quantile_ns(0.5), 30);
        assert_eq!(report.publish_quantile_ns(1.0), 50);
        assert_eq!(report.repair_quantile_ns(0.5), 0, "empty samples -> 0");
    }
}
