//! Fault-free Hamiltonian cycles under link failures (Section 3.3).
//!
//! Two complementary mechanisms are combined, exactly as Proposition 3.4
//! prescribes:
//!
//! * **Translate repair** (Proposition 3.3). For a prime power d, the d
//!   edge-disjoint translates {s + C} mean that at most f of them can be
//!   touched by f faulty links; a fault-free translate is then routed
//!   through its missing node s^n by one of the d − 1 candidate edge pairs,
//!   at most f of which can be spoiled. This tolerates φ(p^e) = p^e − 2
//!   faults, which is optimal. For composite d the fault set is split
//!   between the two coprime factors of the Rees product, giving
//!   φ(d) = Σ p_i^{e_i} − 2k.
//! * **Disjoint-family selection**. ψ(d) pairwise disjoint Hamiltonian
//!   cycles exist (Section 3.2), so ψ(d) − 1 faults always leave one of
//!   them untouched.
//!
//! The embedder tries both and returns whichever succeeds, so it realises
//! the MAX{ψ(d) − 1, φ(d)} tolerance of Table 3.2.
//!
//! # Relation to the online repair engine
//!
//! This module is the *offline* link-fault story: it searches for a full
//! Hamiltonian cycle that threads around the faulty links, keeping every
//! node, but recomputes from scratch per fault set and is bounded by the
//! Table 3.2 tolerance. The *online* story lives in
//! [`RingMaintainer`](crate::RingMaintainer): a
//! [`FaultEvent::EdgeDown`](crate::FaultEvent) excludes the faulty link's
//! **source node** (necklace removal applied to the sending endpoint), so
//! the maintained ring provably never traverses the link — coarser (the
//! ring shrinks) but incremental, composable with node faults in the same
//! batch, and valid for any number of link faults. Use the embedder when
//! node coverage is paramount and faults are few; use the maintainer under
//! churn. The cross-check that a maintainer ring avoids its faulted links
//! is pinned in this module's tests.

use dbg_algebra::num::{factorize, pow};
use dbg_graph::DeBruijn;

use crate::bounds::edge_fault_tolerance;
use crate::disjoint::{rees_product, DisjointHamiltonianCycles, MaximalCycleFamily};
use crate::seq::{nodes_from_symbols, symbols_from_nodes};

/// Embeds fault-free Hamiltonian cycles in B(d,n) in the presence of faulty
/// links.
#[derive(Clone, Debug)]
pub struct EdgeFaultEmbedder {
    graph: DeBruijn,
}

/// Typed failure of [`EdgeFaultEmbedder::try_hamiltonian_avoiding`]: both
/// mechanisms came up empty. Guaranteed not to occur while the genuine
/// fault count stays within [`EdgeFaultEmbedder::tolerance`]; beyond the
/// guarantee it is an *expected* per-input outcome that sweep rows should
/// record, not a reason to abort a whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoFaultFreeCycle {
    /// Genuine faulty links considered (non-loop, existing, deduplicated).
    pub faults: usize,
    /// The guaranteed tolerance MAX{ψ(d) − 1, φ(d)} of this alphabet.
    pub tolerance: u64,
}

impl std::fmt::Display for NoFaultFreeCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no fault-free Hamiltonian cycle found for {} faulty links \
             (guaranteed only up to the tolerance of {})",
            self.faults, self.tolerance
        )
    }
}

impl std::error::Error for NoFaultFreeCycle {}

impl EdgeFaultEmbedder {
    /// Creates the embedder for B(d,n) (n ≥ 2).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        assert!(n >= 2, "edge-fault embedding requires n >= 2");
        EdgeFaultEmbedder {
            graph: DeBruijn::new(d, n),
        }
    }

    /// The underlying de Bruijn graph.
    #[must_use]
    pub fn graph(&self) -> &DeBruijn {
        &self.graph
    }

    /// The guaranteed tolerance MAX{ψ(d) − 1, φ(d)} (Proposition 3.4).
    #[must_use]
    pub fn tolerance(d: u64) -> u64 {
        edge_fault_tolerance(d)
    }

    /// Finds a Hamiltonian cycle of B(d,n) that uses none of the faulty
    /// directed edges. Guaranteed to succeed when the number of (non-loop,
    /// genuine) faulty edges is at most [`EdgeFaultEmbedder::tolerance`];
    /// beyond that it may still succeed but can return `None`.
    #[must_use]
    pub fn hamiltonian_avoiding(&self, faulty_edges: &[(usize, usize)]) -> Option<Vec<usize>> {
        self.try_hamiltonian_avoiding(faulty_edges).ok()
    }

    /// [`EdgeFaultEmbedder::hamiltonian_avoiding`] with a typed failure:
    /// on over-budget inputs the error carries the genuine fault count
    /// next to the guarantee, so sweep drivers (the table-3.x binaries)
    /// can record a per-row failure instead of aborting the whole run.
    ///
    /// # Errors
    /// Returns [`NoFaultFreeCycle`] when neither the translate-repair
    /// mechanism nor the disjoint-family selection produces a fault-free
    /// Hamiltonian cycle — possible only beyond the guaranteed tolerance.
    pub fn try_hamiltonian_avoiding(
        &self,
        faulty_edges: &[(usize, usize)],
    ) -> Result<Vec<usize>, NoFaultFreeCycle> {
        let space = self.graph.space();
        // Loop edges can never lie on a Hamiltonian cycle of ≥ 2 nodes, and
        // non-edges cannot be used either; both are dropped. Repeated fault
        // edges are also collapsed: the Rees split below budgets by *count*
        // (`a_share = faults.len().min(phi_s)`), so a duplicate would eat
        // the φ(d) tolerance twice — displacing a distinct fault across the
        // split boundary into a factor whose budget it then exceeds.
        let mut faults: Vec<(usize, usize)> = faulty_edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && self.graph.is_edge(u, v))
            .collect();
        faults.sort_unstable();
        faults.dedup();

        // Mechanism 1: translate repair / Rees split (Proposition 3.3).
        let fault_digits: Vec<Vec<u64>> = faults
            .iter()
            .map(|&(u, v)| {
                let mut digits = space.digits(u as u64);
                digits.push(v as u64 % space.d());
                digits
            })
            .collect();
        if let Some(symbols) = hamiltonian_symbols_avoiding(space.d(), space.n(), &fault_digits) {
            let cycle = nodes_from_symbols(space, &symbols);
            if cycle_avoids(&cycle, &faults) {
                return Ok(cycle);
            }
        }

        // Mechanism 2: one of the ψ(d) disjoint Hamiltonian cycles survives.
        let dhc = DisjointHamiltonianCycles::construct(space.d(), space.n());
        dhc.fault_free_cycle(&faults)
            .cloned()
            .ok_or(NoFaultFreeCycle {
                faults: faults.len(),
                tolerance: Self::tolerance(space.d()),
            })
    }
}

/// Whether `cycle`, read circularly, uses none of the directed edges in `faults`.
fn cycle_avoids(cycle: &[usize], faults: &[(usize, usize)]) -> bool {
    use std::collections::HashSet;
    let faults: HashSet<(usize, usize)> = faults.iter().copied().collect();
    (0..cycle.len()).all(|i| !faults.contains(&(cycle[i], cycle[(i + 1) % cycle.len()])))
}

/// The recursive core of Proposition 3.3, operating on circular symbol
/// sequences. `faults` are (n+1)-digit edge windows over Z_d. Returns a
/// Hamiltonian symbol sequence of B(d,n) avoiding every fault, or `None`
/// if this mechanism cannot produce one.
#[must_use]
pub fn hamiltonian_symbols_avoiding(d: u64, n: u32, faults: &[Vec<u64>]) -> Option<Vec<u64>> {
    debug_assert!(faults.iter().all(|f| f.len() == n as usize + 1));
    let factors = factorize(d);
    if factors.len() == 1 {
        return prime_power_avoiding(d, n, faults);
    }

    // Composite d: split the faults between the two coprime factors of the
    // Rees product. A fault is avoided as soon as *either* projection is
    // avoided by the corresponding factor cycle.
    let (p, e) = *factors.last().expect("composite numbers have factors");
    let t = pow(p, e);
    let s = d / t;
    let phi_s = crate::bounds::phi_edge_bound(s) as usize;
    let a_share = faults.len().min(phi_s);
    let a_faults: Vec<Vec<u64>> = faults[..a_share]
        .iter()
        .map(|f| f.iter().map(|&x| x / t).collect())
        .collect();
    let b_faults: Vec<Vec<u64>> = faults[a_share..]
        .iter()
        .map(|f| f.iter().map(|&x| x % t).collect())
        .collect();
    let a = hamiltonian_symbols_avoiding(s, n, &a_faults)?;
    let b = hamiltonian_symbols_avoiding(t, n, &b_faults)?;
    Some(rees_product(t, &a, &b))
}

/// Proposition 3.3 for a prime power d: pick an untouched translate s + C
/// and an untouched replacement pair.
fn prime_power_avoiding(d: u64, n: u32, faults: &[Vec<u64>]) -> Option<Vec<u64>> {
    let family = MaximalCycleFamily::new(d, n);
    let space = family.space();
    // Decode each fault into its edge (u, v).
    let fault_edges: Vec<(usize, usize)> = faults
        .iter()
        .map(|f| {
            let u = space.from_digits(&f[..n as usize]) as usize;
            let v = space.shift_append(u as u64, f[n as usize]) as usize;
            (u, v)
        })
        .collect();

    for s in 0..d {
        // Is any fault on s + C?
        let nodes = family.translate_nodes(s);
        let on_translate = |&(u, v): &(usize, usize)| -> bool {
            match family.position_in_translate(s, u) {
                Some(pos) => nodes[(pos + 1) % nodes.len()] == v,
                None => false,
            }
        };
        if fault_edges.iter().any(on_translate) {
            continue;
        }
        // Choose a replacement pair untouched by the faults.
        for alpha in (0..d).filter(|&a| a != s) {
            let [e1, e2] = family.replacement_edges(s, alpha);
            if fault_edges.contains(&e1) || fault_edges.contains(&e2) {
                continue;
            }
            let h = family.hamiltonian_with_alpha(s, alpha);
            return Some(symbols_from_nodes(space, &h));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::is_hamiltonian_cycle;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_non_loop_edges(d: u64, n: u32, count: usize, seed: u64) -> Vec<(usize, usize)> {
        let g = DeBruijn::new(d, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        while out.len() < count {
            let u = rng.gen_range(0..g.len());
            let a = rng.gen_range(0..d);
            let v = g.successor(u, a);
            if u != v && !out.contains(&(u, v)) {
                out.push((u, v));
            }
        }
        out
    }

    fn check(d: u64, n: u32, faults: &[(usize, usize)]) {
        let embedder = EdgeFaultEmbedder::new(d, n);
        let cycle = embedder
            .hamiltonian_avoiding(faults)
            .unwrap_or_else(|| panic!("no HC found for d={d} n={n} faults={faults:?}"));
        let g = DeBruijn::new(d, n);
        assert!(is_hamiltonian_cycle(&g, &cycle), "d={d} n={n}");
        assert!(
            cycle_avoids(&cycle, faults),
            "d={d} n={n}: cycle uses a faulty edge"
        );
    }

    #[test]
    fn proposition_3_3_prime_powers_tolerate_d_minus_2() {
        for (d, n) in [(3u64, 3u32), (4, 2), (5, 2), (7, 2), (8, 2), (9, 2), (4, 3)] {
            let f = (d - 2) as usize;
            for seed in 0..5u64 {
                let faults = random_non_loop_edges(d, n, f, seed * 31 + d);
                check(d, n, &faults);
            }
        }
    }

    #[test]
    fn composite_alphabets_tolerate_phi() {
        for (d, n) in [(6u64, 2u32), (6, 3), (10, 2), (12, 2), (15, 2)] {
            let f = crate::bounds::phi_edge_bound(d) as usize;
            for seed in 0..4u64 {
                let faults = random_non_loop_edges(d, n, f, seed * 17 + d);
                check(d, n, &faults);
            }
        }
    }

    #[test]
    fn proposition_3_4_tolerance_for_28() {
        // d = 28 is the tabulated case where ψ(d) − 1 = 8 exceeds φ(d) = 7.
        let d = 28u64;
        let n = 2u32;
        assert_eq!(EdgeFaultEmbedder::tolerance(d), 8);
        let faults = random_non_loop_edges(d, n, 8, 7);
        check(d, n, &faults);
    }

    #[test]
    fn binary_graph_tolerates_no_edge_faults_but_zero_fault_case_works() {
        // φ(2) = 0 and ψ(2) − 1 = 0: only the fault-free case is guaranteed.
        let embedder = EdgeFaultEmbedder::new(2, 4);
        let cycle = embedder.hamiltonian_avoiding(&[]).unwrap();
        assert!(is_hamiltonian_cycle(&DeBruijn::new(2, 4), &cycle));
    }

    #[test]
    fn worst_case_d_minus_1_faults_around_zero_defeat_embedding() {
        // Removing the d − 1 non-loop edges terminating at 0^n makes B(d,n)
        // non-Hamiltonian (Section 3.3), so the embedder must return None.
        let d = 4u64;
        let n = 2u32;
        let g = DeBruijn::new(d, n);
        let zero = 0usize;
        let faults: Vec<(usize, usize)> = g
            .predecessors(zero)
            .into_iter()
            .filter(|&u| u != zero)
            .map(|u| (u, zero))
            .collect();
        assert_eq!(faults.len() as u64, d - 1);
        let embedder = EdgeFaultEmbedder::new(d, n);
        assert!(embedder.hamiltonian_avoiding(&faults).is_none());
    }

    /// Satellite regression: an over-budget fault set must surface as a
    /// typed, recordable failure — carrying the genuine fault count next
    /// to the guarantee — rather than forcing callers to panic the whole
    /// sweep (the old `unwrap_or_else(panic!)` table-driver pattern).
    #[test]
    fn over_budget_fault_sets_report_a_typed_failure() {
        let (d, n) = (4u64, 2u32);
        let g = DeBruijn::new(d, n);
        let zero = 0usize;
        // The d − 1 = 3 in-edges of 0^n: one past φ(4) = 2 and
        // ψ(4) − 1 = 2, and provably unembeddable.
        let faults: Vec<(usize, usize)> = g
            .predecessors(zero)
            .into_iter()
            .filter(|&u| u != zero)
            .map(|u| (u, zero))
            .collect();
        let embedder = EdgeFaultEmbedder::new(d, n);
        let err = embedder
            .try_hamiltonian_avoiding(&faults)
            .expect_err("3 faults around 0^n defeat B(4,2)");
        assert_eq!(err.faults, 3);
        assert_eq!(err.tolerance, EdgeFaultEmbedder::tolerance(d));
        assert!(err.faults as u64 > err.tolerance, "failure is over budget");
        assert!(err.to_string().contains("3 faulty links"));
        // Within budget, the Result arm round-trips the same cycles.
        let ok = embedder
            .try_hamiltonian_avoiding(&faults[..2])
            .expect("2 faults are within the guarantee");
        assert_eq!(Some(ok), embedder.hamiltonian_avoiding(&faults[..2]));
    }

    #[test]
    fn loop_and_bogus_faults_are_ignored() {
        let embedder = EdgeFaultEmbedder::new(3, 3);
        let g = DeBruijn::new(3, 3);
        // A loop edge, a non-edge and one real fault.
        let zero = 0usize;
        let real = (g.node("012").unwrap(), g.node("121").unwrap());
        let faults = vec![(zero, zero), (1, 20), real];
        let cycle = embedder.hamiltonian_avoiding(&faults).unwrap();
        assert!(is_hamiltonian_cycle(&g, &cycle));
        assert!(cycle_avoids(&cycle, &[real]));
    }

    #[test]
    fn duplicated_faults_do_not_consume_the_rees_budget_twice() {
        // Regression for the dedup fix, pinned on B(15,2): φ(15) = 4,
        // ψ(15) = 2, tolerance = 4, Rees split t = 5 / s = 3 with budgets
        // φ(5) = 3 and φ(3) = 1. The four distinct faults below are chosen
        // adversarially: their %5 projections are the four non-loop
        // in-edges of node 00 of B(5,2) (which make that factor graph
        // non-Hamiltonian if all four land on it), and F1/F2 lie on the two
        // disjoint Hamiltonian cycles of B(15,2) (so mechanism 2 cannot
        // rescue the embedding either). Submitting F1 twice used to push
        // all four distinct projections into the t = 5 factor — one over
        // its budget — and `hamiltonian_avoiding` returned None at exactly
        // the guaranteed tolerance. With dedup, the split sees 4 distinct
        // faults and succeeds.
        let (d, n) = (15u64, 2u32);
        assert_eq!(crate::bounds::phi_edge_bound(d), 4);
        assert_eq!(crate::bounds::psi(d), 2);
        let g = DeBruijn::new(d, n);
        let f1 = (105usize, 10usize);
        let f2 = (120usize, 10usize);
        let f3 = (15usize, 0usize);
        let f4 = (60usize, 0usize);
        let distinct = [f1, f2, f3, f4];
        for &(u, v) in &distinct {
            assert!(g.is_edge(u, v) && u != v);
        }
        // Mechanism 1 alone is genuinely defeated by the duplicated
        // submission order (this is what the embedder used to forward).
        let space = g.space();
        let windows: Vec<Vec<u64>> = [f1, f1, f2, f3, f4]
            .iter()
            .map(|&(u, v)| {
                let mut w = space.digits(u as u64);
                w.push(v as u64 % d);
                w
            })
            .collect();
        assert!(
            hamiltonian_symbols_avoiding(d, n, &windows).is_none(),
            "the duplicated split should still defeat mechanism 1 — if this \
             starts passing, the pinned fault set no longer exercises the bug"
        );
        // And mechanism 2 is defeated by construction (both disjoint cycles
        // are touched), so only dedup saves the embedding.
        let dhc = DisjointHamiltonianCycles::construct(d, n);
        assert!(dhc.fault_free_cycle(&distinct).is_none());
        let embedder = EdgeFaultEmbedder::new(d, n);
        let duplicated = vec![f1, f1, f2, f3, f4];
        let cycle = embedder
            .hamiltonian_avoiding(&duplicated)
            .expect("4 distinct faults are within φ(15); duplicates must not shrink the budget");
        assert!(is_hamiltonian_cycle(&g, &cycle));
        assert!(cycle_avoids(&cycle, &distinct));
        // Heavier duplication changes nothing.
        let mut many = Vec::new();
        for _ in 0..3 {
            many.extend_from_slice(&distinct);
        }
        let cycle = embedder.hamiltonian_avoiding(&many).expect("triplicated");
        assert!(cycle_avoids(&cycle, &distinct));
    }

    /// The online counterpart (see the module docs): a `RingMaintainer`
    /// fed the same link faults as `FaultEvent::EdgeDown` events serves a
    /// ring that never traverses any faulted link — by excluding sources
    /// it trades ring length for unconditional applicability, where this
    /// module's embedder keeps every node but is budget-bounded.
    #[test]
    fn ring_maintainer_rings_avoid_faulted_links() {
        use crate::ffc::{FaultEvent, Ffc, RingMaintainer};
        for (d, n) in [(2u64, 6u32), (3, 4)] {
            let ffc = Ffc::new(d, n);
            let g = DeBruijn::new(d, n);
            let faults = random_non_loop_edges(d, n, 4, 0xED6E + d);
            let mut maint = RingMaintainer::new();
            maint.reset(&ffc, &[]).expect("in-range");
            let full_len = maint.outcome().ring_len();
            let events: Vec<FaultEvent> = faults
                .iter()
                .map(|&(u, w)| FaultEvent::EdgeDown(u, w))
                .collect();
            let out = maint.apply_batch(&ffc, &events).expect("real edges");
            let mut ring = Vec::new();
            maint.ring_into(&mut ring);
            assert_eq!(ring.len(), out.ring_len());
            assert!(!ring.is_empty(), "4 link faults cannot empty B({d},{n})");
            assert!(
                cycle_avoids(&ring, &faults),
                "maintained ring traverses a faulted link on B({d},{n})"
            );
            // Each step of the served ring is still a real de Bruijn edge.
            for i in 0..ring.len() {
                assert!(g.is_edge(ring[i], ring[(i + 1) % ring.len()]));
            }
            // Clearing the links restores the full fault-free ring.
            let ups: Vec<FaultEvent> = faults
                .iter()
                .map(|&(u, w)| FaultEvent::EdgeUp(u, w))
                .collect();
            let back = maint.apply_batch(&ffc, &ups).expect("real edges");
            assert!(back.is_repaired());
            assert_eq!(back.ring_len(), full_len);
        }
    }

    #[test]
    fn adversarial_faults_on_every_translate_edge_pair() {
        // Place faults specifically on the replacement pairs of one
        // translate to force the algorithm to pick a different α or s.
        let d = 5u64;
        let n = 2u32;
        let family = MaximalCycleFamily::new(d, n);
        let mut faults = Vec::new();
        for alpha in 1..d.min(4) {
            let [e1, _] = family.replacement_edges(0, alpha);
            faults.push(e1);
        }
        check(d, n, &faults);
    }
}
