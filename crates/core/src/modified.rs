//! The modified de Bruijn graph MB(d,n) and its Hamiltonian decomposition
//! (Section 3.2.3, Figure 3.3).
//!
//! B(d,n) itself can never be decomposed into Hamiltonian cycles: the d^n
//! loop edges belong to no Hamiltonian cycle, so at most d − 1 disjoint HCs
//! exist. The paper therefore *modifies* the graph: every translate s + C
//! is routed through its missing node s^n by breaking one **p-edge**
//! (the edge between the two alternating words αβαβ… and βαβα…), producing
//! d pairwise disjoint Hamiltonian cycles whose union MB(d,n) is a
//! d-in/d-out digraph admitting a Hamiltonian decomposition — while the
//! undirected UMB(d,n) still contains UB(d,n).
//!
//! Two constructions are implemented, following the paper: odd prime power
//! d (any n ≥ 2), and d = 2 (n ≥ 3, Example 3.6 / Figure 3.3).

use dbg_algebra::words::WordSpace;
use dbg_graph::{DiGraph, UnGraph};

use crate::disjoint::MaximalCycleFamily;

/// The Hamiltonian decomposition of the modified de Bruijn graph MB(d,n).
#[derive(Clone, Debug)]
pub struct ModifiedDeBruijn {
    space: WordSpace,
    cycles: Vec<Vec<usize>>,
}

/// Decomposes `digits` as an alternating word αβαβ… with α ≠ β, if it is one.
fn alternating_pair(digits: &[u64]) -> Option<(u64, u64)> {
    let alpha = digits[0];
    let beta = *digits.get(1)?;
    if alpha == beta {
        return None;
    }
    for (i, &x) in digits.iter().enumerate() {
        let expect = if i % 2 == 0 { alpha } else { beta };
        if x != expect {
            return None;
        }
    }
    Some((alpha, beta))
}

impl ModifiedDeBruijn {
    /// Builds the decomposition. Requires d to be 2 (with n ≥ 3) or an odd
    /// prime power (with n ≥ 2).
    ///
    /// # Panics
    /// Panics for unsupported (d, n) combinations.
    #[must_use]
    pub fn construct(d: u64, n: u32) -> Self {
        let space = WordSpace::new(d, n);
        let cycles = if d == 2 {
            assert!(
                n >= 3,
                "the binary modification requires n >= 3 (Example 3.6 uses n = 3)"
            );
            Self::binary_cycles(n)
        } else {
            assert!(
                dbg_algebra::num::prime_power(d).map(|(p, _)| p % 2 == 1) == Some(true),
                "MB(d,n) is constructed for d = 2 or an odd prime power (got d = {d})"
            );
            assert!(n >= 2);
            Self::odd_prime_power_cycles(d, n)
        };
        ModifiedDeBruijn { space, cycles }
    }

    /// The d pairwise edge-disjoint Hamiltonian cycles of MB(d,n).
    #[must_use]
    pub fn cycles(&self) -> &[Vec<usize>] {
        &self.cycles
    }

    /// The word space (d, n).
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// The modified digraph MB(d,n): the union of the edges of the cycles.
    /// Every node has in-degree and out-degree d.
    #[must_use]
    pub fn graph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.space.count() as usize);
        for cycle in &self.cycles {
            for i in 0..cycle.len() {
                g.add_edge(cycle[i], cycle[(i + 1) % cycle.len()]);
            }
        }
        g
    }

    /// The undirected modified graph UMB(d,n) (a multigraph: antiparallel
    /// directed edges become a doubled undirected edge).
    #[must_use]
    pub fn undirected(&self) -> UnGraph {
        let mut g = UnGraph::new(self.space.count() as usize);
        for cycle in &self.cycles {
            for i in 0..cycle.len() {
                g.add_edge(cycle[i], cycle[(i + 1) % cycle.len()]);
            }
        }
        g
    }

    /// The directed edges of MB(d,n) that are *not* edges of B(d,n) — the
    /// price paid for the decomposition (2d edges for odd prime powers,
    /// 3 for the binary case).
    #[must_use]
    pub fn extra_edges(&self) -> Vec<(usize, usize)> {
        let b = dbg_graph::DeBruijn::new(self.space.d(), self.space.n());
        let mut out = Vec::new();
        for cycle in &self.cycles {
            for i in 0..cycle.len() {
                let e = (cycle[i], cycle[(i + 1) % cycle.len()]);
                if !b.is_edge(e.0, e.1) {
                    out.push(e);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Odd prime power construction: break the p-edge E_s of each translate
    /// s + C and route through s^n.
    ///
    /// A p-edge (αβαβ…, βαβα…) works for every n ≥ 3. For n = 2 the
    /// replacement edge (α+s)(β+s) → ss would be a *real* de Bruijn edge
    /// whenever β = 0, colliding with another translate, so a p-edge with
    /// both symbols nonzero is required; if the default maximal cycle does
    /// not contain one, other primitive polynomials are tried.
    fn odd_prime_power_cycles(d: u64, n: u32) -> Vec<Vec<usize>> {
        let field = dbg_algebra::gf::GField::new(d);
        let mut families: Vec<MaximalCycleFamily> = Vec::new();
        families.push(MaximalCycleFamily::new(d, n));
        if n == 2 {
            // Enumerate further primitive polynomials as fallbacks.
            let q = field.order();
            for code in 0..q * q {
                let coeffs = vec![code % q, code / q, 1];
                let poly = dbg_algebra::polygf::PolyGf::new(&coeffs);
                if poly.coeff(0) != 0 && poly.degree() == 2 && poly.is_primitive(&field) {
                    families.push(MaximalCycleFamily::with_polynomial(field.clone(), poly));
                }
            }
        }

        for family in &families {
            let space = family.space();
            let base_nodes = family.translate_nodes(0);
            let k = base_nodes.len();
            // Find a usable p-edge in C: consecutive nodes (alt(α,β), alt(β,α)),
            // with nonzero symbols when n = 2.
            let p_edge_pos = (0..k).find(|&i| {
                let u = space.digits(base_nodes[i] as u64);
                let v = space.digits(base_nodes[(i + 1) % k] as u64);
                match (alternating_pair(&u), alternating_pair(&v)) {
                    (Some((a, b)), Some((c, e))) => {
                        c == b && e == a && (n >= 3 || (a != 0 && b != 0))
                    }
                    _ => false,
                }
            });
            let Some(p_edge_pos) = p_edge_pos else {
                continue;
            };

            return (0..d)
                .map(|s| {
                    let nodes = family.translate_nodes(s);
                    let sn = space.constant(s) as usize;
                    // E_s sits at the same position as E in C; splice s^n there.
                    let mut h = Vec::with_capacity(k + 1);
                    h.push(nodes[p_edge_pos]);
                    h.push(sn);
                    for i in 1..k {
                        h.push(nodes[(p_edge_pos + i) % k]);
                    }
                    h
                })
                .collect();
        }
        unreachable!("some maximal cycle of B({d},{n}) contains a usable p-edge")
    }

    /// Binary construction (Example 3.6): extend C through 0^n, then reroute
    /// 1 + C around 0^n and through both 0^n and 1^n via its p-edge.
    fn binary_cycles(n: u32) -> Vec<Vec<usize>> {
        let family = MaximalCycleFamily::new(2, n);
        let space = family.space();
        let zero = space.constant(0) as usize;
        let one = space.constant(1) as usize;

        // C' = C with 0^n inserted between 10^{n-1} and 0^{n-1}1.
        let c_nodes = family.translate_nodes(0);
        let exit = space.from_digits(
            &std::iter::once(1)
                .chain(std::iter::repeat_n(0, n as usize - 1))
                .collect::<Vec<_>>(),
        ) as usize;
        let pos = family
            .position_in_translate(0, exit)
            .expect("10^{n-1} lies on C");
        let k = c_nodes.len();
        let mut c_prime = Vec::with_capacity(k + 1);
        c_prime.push(c_nodes[pos]);
        c_prime.push(zero);
        for i in 1..k {
            c_prime.push(c_nodes[(pos + i) % k]);
        }

        // 1 + C with 0^n removed (bypass), then its p-edge rerouted through
        // 0^n and 1^n.
        let t_nodes = family.translate_nodes(1);
        let reduced: Vec<usize> = t_nodes.iter().copied().filter(|&v| v != zero).collect();
        // Find the directed p-edge inside the reduced cycle.
        let m = reduced.len();
        let p_pos = (0..m)
            .find(|&i| {
                let u = space.digits(reduced[i] as u64);
                let v = space.digits(reduced[(i + 1) % m] as u64);
                match (alternating_pair(&u), alternating_pair(&v)) {
                    (Some((a, b)), Some((c, e))) => c == b && e == a,
                    _ => false,
                }
            })
            .expect("1 + C contains one directed p-edge");
        let mut second = Vec::with_capacity(m + 2);
        second.push(reduced[p_pos]);
        second.push(zero);
        second.push(one);
        for i in 1..m {
            second.push(reduced[(p_pos + i) % m]);
        }

        vec![c_prime, second]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::all_pairwise_edge_disjoint;
    use dbg_graph::DeBruijn;

    fn check_decomposition(d: u64, n: u32) {
        let m = ModifiedDeBruijn::construct(d, n);
        let total = m.space().count() as usize;
        assert_eq!(m.cycles().len() as u64, d, "d={d} n={n}: expected d cycles");
        for c in m.cycles() {
            assert_eq!(
                c.len(),
                total,
                "d={d} n={n}: each cycle must be Hamiltonian"
            );
            let mut sorted = c.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), total, "d={d} n={n}: repeated node in a cycle");
        }
        assert!(
            all_pairwise_edge_disjoint(m.cycles()),
            "d={d} n={n}: cycles share an edge"
        );
        // MB(d,n) is d-regular in and out.
        let g = m.graph();
        for v in 0..total {
            assert_eq!(g.out_neighbors(v).len() as u64, d, "d={d} n={n} v={v}");
            assert_eq!(g.in_degree(v) as u64, d, "d={d} n={n} v={v}");
        }
        // UMB(d,n) contains UB(d,n).
        let umb = m.undirected();
        let ub = DeBruijn::new(d, n).to_undirected();
        for (a, b) in ub.edges() {
            assert!(
                umb.has_edge(a, b),
                "d={d} n={n}: UB edge {a}-{b} missing from UMB"
            );
        }
    }

    #[test]
    fn binary_decomposition_example_3_6() {
        check_decomposition(2, 3);
        let m = ModifiedDeBruijn::construct(2, 3);
        // Exactly three directed edges are new (Figure 3.3): they involve
        // 000 and 111 in ways B(2,3) does not provide.
        let extra = m.extra_edges();
        assert_eq!(extra.len(), 3);
        let space = m.space();
        for (u, v) in extra {
            let constants = [space.constant(0) as usize, space.constant(1) as usize];
            assert!(
                constants.contains(&u) || constants.contains(&v),
                "extra edges touch 0^n or 1^n"
            );
        }
    }

    #[test]
    fn binary_decomposition_larger_n() {
        check_decomposition(2, 4);
        check_decomposition(2, 5);
        check_decomposition(2, 6);
    }

    #[test]
    fn odd_prime_power_decompositions() {
        check_decomposition(3, 3);
        check_decomposition(3, 4);
        check_decomposition(5, 2);
        check_decomposition(5, 3);
        check_decomposition(7, 2);
        check_decomposition(9, 2);
    }

    #[test]
    fn odd_prime_power_extra_edge_count_is_2d() {
        for (d, n) in [(3u64, 3u32), (5, 2), (7, 2)] {
            let m = ModifiedDeBruijn::construct(d, n);
            assert_eq!(m.extra_edges().len() as u64, 2 * d, "d={d} n={n}");
        }
    }

    #[test]
    fn at_most_one_direction_of_each_p_edge_is_dropped() {
        // UMB keeps every undirected p-edge because only one orientation is
        // ever replaced (the argument at the end of Section 3.2.3).
        let m = ModifiedDeBruijn::construct(5, 2);
        let space = m.space();
        let umb = m.undirected();
        for alpha in 0..5u64 {
            for beta in 0..5u64 {
                if alpha == beta {
                    continue;
                }
                let u = space.alternating(alpha, beta) as usize;
                let v = space.alternating(beta, alpha) as usize;
                assert!(umb.has_edge(u, v), "p-edge {alpha}{beta} lost from UMB");
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd prime power")]
    fn composite_alphabets_are_rejected() {
        let _ = ModifiedDeBruijn::construct(6, 2);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn binary_n2_is_rejected() {
        let _ = ModifiedDeBruijn::construct(2, 2);
    }
}
