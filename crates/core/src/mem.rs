//! Shared grow-only buffer helpers and the compact level storage used by
//! the engine's memory layer.
//!
//! Before PR 10 the `grow_words`-style growth helpers and the
//! [`UNREACHED`] sentinel were duplicated across `bitreach`, the session
//! and the FFC scratch; this module is their single home. It also owns
//! [`LevelVec`] — the u8 level array that quarters the DRAM footprint of
//! every per-node level sweep — and the [`LevelStore`] abstraction the
//! delta level-repair passes are generic over, so the compact storage and
//! the plain `u32` oracle arrays run the exact same code.

/// Level value of a node outside the structure (unreachable, dead, or not
/// a member). The delta passes treat it as +∞.
pub const UNREACHED: u32 = u32::MAX;

/// The byte encoding of [`UNREACHED`] inside a [`LevelVec`].
pub const UNREACHED_U8: u8 = 0xFF;

/// Byte marking a level too large for inline u8 storage; the exact value
/// lives in the [`LevelVec`]'s overflow side table.
const ESCAPED_U8: u8 = 0xFE;

/// Largest level stored inline as a byte. BFS levels are bounded by the
/// component diameter, which fits a byte on every practical shape — the
/// escape path exists for the *transient* states of
/// [`crate::bitreach::BitReach::levels_delete`], whose unsupported nodes
/// climb one level at a time toward `n_nodes` before settling at
/// [`UNREACHED`].
const MAX_INLINE_LEVEL: u32 = 0xFD;

/// Overflow slots reserved up front so the common repair paths (whose
/// levels never escape) keep the engine's no-allocation-after-warm-up
/// property even when a rare deep cascade brushes the inline maximum.
const OVERFLOW_RESERVE: usize = 16;

/// Grows a slot vector to at least `len` entries (filled with `fill`)
/// without ever shrinking.
pub(crate) fn grow_to<T: Clone>(v: &mut Vec<T>, len: usize, fill: T) {
    if v.len() < len {
        v.resize(len, fill);
    }
}

/// Grows a word buffer to at least `words` entries without shrinking.
pub(crate) fn grow_words(v: &mut Vec<u64>, words: usize) {
    if v.len() < words {
        v.resize(words, 0);
    }
}

/// Guarantees capacity for `cap` entries without touching the length.
pub(crate) fn reserve_more<T>(v: &mut Vec<T>, cap: usize) {
    if v.capacity() < cap {
        v.reserve_exact(cap - v.len());
    }
}

/// A per-node BFS level array in one byte per node — 4× smaller than the
/// `Vec<u32>` it replaces, which is 4× less DRAM traffic on every level
/// sweep (the scatter after a rebuild, the histogram passes, the
/// copy-on-publish of snapshot level groups).
///
/// Encoding: bytes `0..=0xFD` hold the level inline, [`UNREACHED_U8`]
/// encodes [`UNREACHED`], and the escape byte `0xFE` points into a tiny
/// `(node, level)` side table for the transient >253 values a delete
/// cascade can pass through (see [`LevelVec::set`]). The side table is
/// empty in steady state: settled BFS levels are bounded by the component
/// diameter. Reads and writes stay exact for *every* `u32` level, so the
/// compact array is bit-for-bit interchangeable with a `u32` array — the
/// property the differential suites pin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelVec {
    /// One byte per node: the inline level, [`UNREACHED_U8`], or the
    /// escape marker.
    bytes: Vec<u8>,
    /// Exact values of the escaped entries, unordered, at most one entry
    /// per node.
    overflow: Vec<(u32, u32)>,
}

impl LevelVec {
    /// Creates an empty level array.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of per-node slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the array has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grows to at least `len` slots (new slots [`UNREACHED`]) without
    /// ever shrinking, and pre-reserves the overflow side table.
    pub fn grow(&mut self, len: usize) {
        grow_to(&mut self.bytes, len, UNREACHED_U8);
        reserve_more(&mut self.overflow, OVERFLOW_RESERVE);
    }

    /// Sets every slot to [`UNREACHED`] and empties the side table.
    pub fn fill_unreached(&mut self) {
        self.bytes.fill(UNREACHED_U8);
        self.overflow.clear();
    }

    /// The level of node `i` ([`UNREACHED`] when outside the structure).
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u32 {
        let b = self.bytes[i];
        if b < ESCAPED_U8 {
            u32::from(b)
        } else if b == UNREACHED_U8 {
            UNREACHED
        } else {
            self.get_escaped(i)
        }
    }

    #[cold]
    fn get_escaped(&self, i: usize) -> u32 {
        self.overflow
            .iter()
            .find(|&&(n, _)| n as usize == i)
            .map(|&(_, l)| l)
            // PANIC-OK: an escape byte without a side-table entry is an
            // internal invariant violation `set` cannot produce.
            .expect("escaped level has a side-table entry")
    }

    /// Sets node `i`'s level to `l` (any `u32`; values above the inline
    /// maximum escape to the side table, [`UNREACHED`] clears the slot).
    #[inline]
    pub fn set(&mut self, i: usize, l: u32) {
        if self.bytes[i] == ESCAPED_U8 {
            self.drop_escaped(i);
        }
        if l <= MAX_INLINE_LEVEL {
            self.bytes[i] = l as u8;
        } else if l == UNREACHED {
            self.bytes[i] = UNREACHED_U8;
        } else {
            self.set_escaped(i, l);
        }
    }

    #[cold]
    fn set_escaped(&mut self, i: usize, l: u32) {
        self.bytes[i] = ESCAPED_U8;
        self.overflow.push((i as u32, l));
    }

    #[cold]
    fn drop_escaped(&mut self, i: usize) {
        if let Some(pos) = self.overflow.iter().position(|&(n, _)| n as usize == i) {
            self.overflow.swap_remove(pos);
        }
    }

    /// Overwrites `self` with a copy of `src`, reusing `self`'s buffers —
    /// the copy-on-publish path of the snapshot publisher's level pool.
    pub fn copy_from(&mut self, src: &LevelVec) {
        self.bytes.clear();
        self.bytes.extend_from_slice(&src.bytes);
        self.overflow.clear();
        self.overflow.extend_from_slice(&src.overflow);
    }

    /// The raw byte encoding (test/bench introspection).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Entries currently escaped to the side table (empty in steady
    /// state).
    #[must_use]
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Total bytes currently reserved — the footprint the benchmark's
    /// `allocated_bytes` column audits (compare `4 * len` for the `u32`
    /// array this type replaces).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.bytes.capacity() + 8 * self.overflow.capacity()
    }
}

/// What the delta level-repair passes need from a level array. Implemented
/// by plain `u32` slices (the differential oracle) and by [`LevelVec`]
/// (the engine), so [`crate::bitreach::BitReach::levels_delete`] /
/// [`crate::bitreach::BitReach::levels_insert`] run the *same*
/// monomorphised algorithm over both and bit-equality is a test, not a
/// hope.
pub trait LevelStore {
    /// The level of node `i` ([`UNREACHED`] when outside the structure).
    fn level(&self, i: usize) -> u32;
    /// Sets node `i`'s level to `l`.
    fn set_level(&mut self, i: usize, l: u32);
}

impl LevelStore for [u32] {
    #[inline]
    fn level(&self, i: usize) -> u32 {
        self[i]
    }

    #[inline]
    fn set_level(&mut self, i: usize, l: u32) {
        self[i] = l;
    }
}

impl LevelStore for Vec<u32> {
    #[inline]
    fn level(&self, i: usize) -> u32 {
        self[i]
    }

    #[inline]
    fn set_level(&mut self, i: usize, l: u32) {
        self[i] = l;
    }
}

impl LevelStore for LevelVec {
    #[inline]
    fn level(&self, i: usize) -> u32 {
        self.get(i)
    }

    #[inline]
    fn set_level(&mut self, i: usize, l: u32) {
        self.set(i, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_unreached_and_escape_encodings_round_trip() {
        let mut lv = LevelVec::new();
        lv.grow(8);
        for i in 0..8 {
            assert_eq!(lv.get(i), UNREACHED);
        }
        lv.set(0, 0);
        lv.set(1, 253); // inline maximum
        lv.set(2, 254); // first escaped value
        lv.set(3, 255); // the u8 sentinel's numeric value, stored exactly
        lv.set(4, 1_000_000);
        lv.set(5, UNREACHED - 1); // largest escapable value
        lv.set(6, UNREACHED);
        assert_eq!(lv.get(0), 0);
        assert_eq!(lv.get(1), 253);
        assert_eq!(lv.get(2), 254);
        assert_eq!(lv.get(3), 255);
        assert_eq!(lv.get(4), 1_000_000);
        assert_eq!(lv.get(5), UNREACHED - 1);
        assert_eq!(lv.get(6), UNREACHED);
        assert_eq!(lv.overflow_len(), 4);
        // Settling an escaped slot back to an inline level (the tail of a
        // delete cascade) or to UNREACHED drops its side-table entry.
        lv.set(2, 7);
        lv.set(3, UNREACHED);
        assert_eq!(lv.get(2), 7);
        assert_eq!(lv.get(3), UNREACHED);
        assert_eq!(lv.overflow_len(), 2);
        // An escaped slot rewritten with another escaped value keeps
        // exactly one entry.
        lv.set(4, 2_000_000);
        assert_eq!(lv.get(4), 2_000_000);
        assert_eq!(lv.overflow_len(), 2);
        lv.fill_unreached();
        assert_eq!(lv.overflow_len(), 0);
        assert!((0..8).all(|i| lv.get(i) == UNREACHED));
    }

    #[test]
    fn climb_through_the_escape_band_keeps_one_entry_per_node() {
        // The exact access pattern of an unsupported node in
        // levels_delete: its level climbs one step at a time through the
        // escape band before settling at UNREACHED.
        let mut lv = LevelVec::new();
        lv.grow(4);
        lv.set(2, 250);
        for l in 251..1024u32 {
            lv.set(2, l);
            assert_eq!(lv.get(2), l);
            assert!(lv.overflow_len() <= 1);
        }
        lv.set(2, UNREACHED);
        assert_eq!(lv.overflow_len(), 0);
    }

    #[test]
    fn level_store_is_interchangeable_between_u32_and_compact() {
        let mut a: Vec<u32> = vec![UNREACHED; 16];
        let mut b = LevelVec::new();
        b.grow(16);
        let writes = [(0usize, 3u32), (5, 0), (7, 300), (7, 301), (5, UNREACHED)];
        for &(i, l) in &writes {
            a.set_level(i, l);
            b.set_level(i, l);
        }
        for i in 0..16 {
            assert_eq!(a.level(i), b.level(i), "slot {i}");
        }
    }
}
