//! Bit-parallel reachability over the implicit shift arithmetic of B(d,n).
//!
//! The FFC engine's hot loops are three BFS passes (forward, backward,
//! broadcast) over a de Bruijn graph with some necklaces removed. For a
//! power-of-two alphabet the successor set of a *set* of nodes is pure
//! word arithmetic on its bitmap: node `v`'s successors are the aligned
//! block `d·(v mod d^(n−1)) + a`, so
//!
//! * the image of a frontier `F` under one BFS step is
//!   `expand_d(fold_d(F))`, where `fold_d` ORs the `d` equal chunks of `F`
//!   (erasing the leading digit) and `expand_d` duplicates every bit into
//!   `d` adjacent positions (appending every trailing digit) — 64 nodes
//!   per handful of shift/mask ops, branch-free;
//! * the preimage is the mirror image, `replicate_d(squash_d(F))`, where
//!   `squash_d` ORs each aligned `d`-bit group into one bit and the result
//!   is replicated across the `d` chunks of the address space.
//!
//! [`BitReach`] packages those kernels behind direction-optimizing BFS
//! passes: while the frontier is sparse a scalar top-down walk over a
//! queue wins (it touches only live edges); once the frontier passes a
//! density threshold the pass switches to the word-parallel bottom-up
//! sweep, where dead nodes are masked out by a single AND per 64 nodes
//! against the word-packed visited set (faulty necklaces are pre-marked
//! visited, exactly like the u8-stamp engine it replaces). A
//! [`BitFrontier`] carries the frontier in whichever representation the
//! current regime wants and converts between them at level boundaries.
//!
//! Non-power-of-two alphabets (and graphs too small to fill whole words)
//! keep the scalar top-down walk throughout — same results, no dense
//! sweeps — so every (d, n) runs through one code path with one set of
//! buffers ([`BitScratch`], embedded in the engine's `EmbedScratch`).
//!
//! # The fused dense kernel
//!
//! A dense level used to run as two phases over two buffers: a fold pass
//! that materialised `fold_d(F)` (or `squash_d(F)`) into a scratch word
//! array, then an expand pass that re-read it, masked against visited and
//! wrote the next frontier. Both phases are memory-bound, so the round
//! trip through the fold buffer cost a full extra sweep of traffic. The
//! kernels are now **fused**: one pass walks the frontier in word tiles
//! and, per tile, performs fold, `spread2`/`squash2` expand, the
//! visited-set mask-and-update and the next-frontier store back to back —
//! the `d = 2` hot shape additionally processes four suffix words (eight
//! output words) per unrolled iteration so the independent word lanes
//! autovectorize. [`BitReach::kernel_step_scalar`] retains the two-phase
//! reference kernel and [`BitReach::kernel_step_fused`] exposes the fused
//! one; the unit tests pin them bit-for-bit against each other and
//! `bench_ffc --kernels` tracks the words/sec ratio.
//!
//! # Hierarchical summaries and compact levels (PR 10)
//!
//! Every frontier/visited-class bitmap carries a **one-bit-per-word
//! summary** (one summary word per 64-word / 4096-node block): summary
//! bit `j` set ⟺ `bits[j]` may be non-zero, with the invariant
//! *occupied ⊆ marked* — a false positive costs one wasted word probe, a
//! false negative would drop nodes and is never produced. The fused
//! kernels maintain the summaries in-flight for near-zero cost (a tile
//! that produced new bits ORs a precomputed block mask), so the
//! dense→sparse switch, the dense level emission and fault-set
//! iteration become two-level skip-scans ([`extract_bits_skip`]) that
//! touch only occupied blocks — the win grows with the node space, which
//! is what lets the B(2,22)/B(2,24) tiers stream early and late BFS
//! phases without full-array sweeps. Per-node level arrays use the
//! compact one-byte [`LevelVec`] (levels are diameter-bounded; see
//! [`crate::mem`]) behind the [`LevelStore`] trait, so the delta passes
//! ([`BitReach::levels_delete`] / [`BitReach::levels_insert`]) run one
//! monomorphised algorithm over both the compact array and the `u32`
//! differential oracle.
//!
//! # The multi-shard parallel passes
//!
//! [`BitReach::forward_par`], [`BitReach::backward_par`] and
//! [`BitReach::broadcast_levels_par`] run the same direction-optimizing
//! passes sharded over a **persistent worker pool** (`shardpool`,
//! vendored): the pool lives in [`ParBitScratch`], its threads are
//! spawned once on first use and reused by every subsequent pass, and
//! per-level synchronisation is a sense-reversing spin barrier instead of
//! the mutex-parked `std::sync::Barrier` — one wait per level (plus one
//! more only on a sparse→dense flip), where the old scoped-thread design
//! paid a thread spawn per call and up to three parked barriers per
//! level. Every bitmap is split into contiguous **word ranges**, each
//! owned by exactly one shard, and each shard runs the fused kernel over
//! its range; the per-level barrier is what lets a shard read frontier
//! words another shard wrote on the previous level. The cells are relaxed
//! atomics ([`AtomicCells`]) — single-writer-per-word, with the barriers
//! providing the ordering — the same discipline as
//! `NecklacePartition::with_shards`. Per-level bookkeeping (dense shard
//! counts, the sparse frontier length) is double-buffered by level parity
//! so one barrier per level suffices. Sparse (top-down) levels are
//! executed by shard 0 alone while the others replay the regime schedule
//! (it depends only on the shared level lengths), so the visited sets,
//! level counts **and emission bytes** are bit-identical to the serial
//! engine at every shard count. Shapes that cannot run dense sweeps (and
//! `shards <= 1`) simply delegate to the serial pass. The
//! [`effective_shards`] heuristic gives callers the shard count actually
//! worth running: requested shards clamped by `available_parallelism`
//! and by one shard per [`MIN_NODES_PER_SHARD`] nodes, so k shards on a
//! small box or a small graph degrades to near-serial cost.
//!
//! # ATOMICS: barrier-phased relaxed cells
//!
//! Every `Ordering::Relaxed` in this module is an [`AtomicCells`] access
//! (or its `sparse_len` twin) under the barrier-phased single-writer
//! protocol: within one phase — the span between two synchronisation
//! edges (a `SenseBarrier` crossing, the pool's job publish/drain, or an
//! explicit [`racecheck::sync_edge`]) — every word has exactly one
//! writing thread, and the edges provide all inter-thread ordering, so
//! no individual access needs more than `Relaxed`. `fetch_min` is the
//! one sanctioned multi-writer operation (a commutative cross-shard
//! min-reduction ordered by its own RMW). The `racecheck` shadow
//! detector stamps its shadow words with `Ordering::SeqCst` so the
//! detector's own bookkeeping is never racy; `--features racecheck`
//! *executes* this audit instead of trusting it.

use crate::mem::grow_words;
pub(crate) use crate::mem::reserve_more;
pub use crate::mem::{LevelStore, LevelVec, UNREACHED, UNREACHED_U8};
use shardpool::{SenseBarrier, ShardPool};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// The engine indexes nodes with `u32` (queues, CSR offsets, frontier
/// ids): a space whose node count exceeds [`u32::MAX`] cannot be
/// represented. Returned by [`BitReach::try_new`] (and re-used by
/// `Ffc::try_new`) instead of silently truncating ids in release builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceTooLarge {
    /// The node count that overflowed the u32 id space, when it is itself
    /// representable in a u64 (`None` when even d^n overflowed u64).
    pub n_nodes: Option<u64>,
}

impl std::fmt::Display for SpaceTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.n_nodes {
            Some(n) => write!(
                f,
                "graph has {n} nodes, but the engine indexes nodes with u32 (max {})",
                u32::MAX
            ),
            None => write!(f, "graph node count d^n overflows u64"),
        }
    }
}

impl std::error::Error for SpaceTooLarge {}

/// Spreads the low 32 bits of `x` so that bit `i` lands on bits `2i` and
/// `2i+1` — the factor-two bit expansion of the forward sweep.
#[inline]
#[must_use]
pub fn spread2(x: u64) -> u64 {
    debug_assert!(x <= u64::from(u32::MAX));
    let mut x = x;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x | (x << 1)
}

/// ORs each adjacent bit pair of `x` into one bit of the low 32 —
/// the factor-two compression of the backward sweep (inverse direction of
/// [`spread2`]): output bit `i` is `x[2i] | x[2i+1]`.
#[inline]
#[must_use]
pub fn squash2(x: u64) -> u64 {
    let mut x = (x | (x >> 1)) & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// When the dense (bottom-up) regime is allowed to kick in. `Auto` is the
/// production policy; `Never`/`Always` pin one regime so the differential
/// tests can compare them bit for bit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DensePolicy {
    /// Direction-optimizing: top-down while sparse, bottom-up once the
    /// frontier carries at least one edge per [`DENSE_SWITCH`] nodes.
    #[default]
    Auto,
    /// Scalar top-down only (also what unsupported shapes always do).
    Never,
    /// Bottom-up from the first level, when the shape supports it.
    Always,
}

/// Auto switches **to** the dense regime when `frontier · d · DENSE_SWITCH
/// ≥ n_nodes` — one frontier edge per 64 nodes, the break-even between a
/// scalar walk of the frontier's edges and a whole-bitmap sweep.
pub const DENSE_SWITCH: usize = 64;

/// Auto switches **back** to top-down when `frontier · d · SPARSE_SWITCH <
/// n_nodes` (4× hysteresis below [`DENSE_SWITCH`]), so the shrinking tail
/// of a pass doesn't pay full sweeps for near-empty levels.
pub const SPARSE_SWITCH: usize = 256;

/// A BFS frontier in either representation: a queue of node ids (sparse /
/// top-down) or a word-packed bitmap (dense / bottom-up). Both buffers
/// persist so conversions and reuse never allocate after warm-up.
#[derive(Clone, Debug, Default)]
pub struct BitFrontier {
    queue: Vec<u32>,
    bits: Vec<u64>,
    /// Hierarchical summary of `bits`: summary bit `j` covers word
    /// `bits[j]`, so one summary *word* covers a 64-word (4096-node)
    /// block. Invariant while dense: `bits[j] != 0 ⇒ sum bit j set`
    /// (occupied ⊆ marked — false positives allowed, never negatives).
    sum: Vec<u64>,
    dense: bool,
    len: usize,
}

impl BitFrontier {
    /// Number of nodes on the frontier.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the frontier currently lives in the dense bitmap.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// Resets to a single-node sparse frontier.
    fn reset_to(&mut self, root: u32) {
        self.queue.clear();
        self.queue.push(root);
        self.dense = false;
        self.len = 1;
    }

    /// Converts sparse → dense (zeroes the live words, then sets the
    /// queued bits and their summary bits).
    fn make_dense(&mut self, words: usize) {
        debug_assert!(!self.dense);
        self.bits[..words].fill(0);
        self.sum[..sum_words(words)].fill(0);
        for &v in &self.queue {
            self.bits[v as usize / 64] |= 1u64 << (v % 64);
            self.sum[v as usize >> 12] |= 1u64 << ((v as usize >> 6) & 63);
        }
        self.dense = true;
    }

    /// Converts dense → sparse. A skip-scan over the summary visits
    /// occupied words only, preserving the increasing-id extraction order
    /// the serial/parallel differential pins.
    fn make_sparse(&mut self, words: usize) {
        debug_assert!(self.dense);
        self.queue.clear();
        extract_bits_skip(
            &self.bits[..words],
            &self.sum[..sum_words(words)],
            &mut self.queue,
        );
        self.dense = false;
    }
}

/// Per-level node emission of [`BitReach::broadcast_levels`]: `nodes` gets
/// every reached node, `offsets` the CSR boundaries of the levels
/// (`offsets[l]..offsets[l+1]` indexes level `l`'s slice of `nodes`).
struct LevelSink<'a> {
    nodes: &'a mut Vec<u32>,
    offsets: &'a mut Vec<u32>,
}

/// The reusable buffers of the bit-parallel engine: the per-call fault
/// bitmap, the three visited sets and the two frontiers (the fused dense
/// kernels need no fold scratch). Grow-only; after the first call at a
/// given graph size no method allocates.
#[derive(Clone, Debug, Default)]
pub struct BitScratch {
    /// Bit `v` set ⟺ node `v` was removed with a faulty necklace.
    dead: Vec<u64>,
    /// Summary of `dead` (bit `j` ⟺ `dead[j]` may be non-zero), kept by
    /// [`BitReach::kill`] so [`BitReach::prepare`] can skip-clear only
    /// the occupied words — fault masks are extremely sparse (f ≪ d−1
    /// necklaces) while the bitmap spans the whole node space.
    dead_sum: Vec<u64>,
    /// Word count `dead`/`dead_sum` were last prepared at; a shape change
    /// falls back to a full clear.
    dead_words: usize,
    /// Forward-reachable visited set (dead bits pre-set).
    fwd: Vec<u64>,
    /// Backward-reachable visited set (dead bits pre-set).
    bwd: Vec<u64>,
    /// Broadcast visited set (everything outside B* pre-set).
    vis: Vec<u64>,
    /// Current-level frontier.
    cur: BitFrontier,
    /// Next-level frontier.
    nxt: BitFrontier,
}

impl BitScratch {
    /// Creates an empty scratch; buffers are sized by the first pass.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently reserved by the scratch's buffers — constant
    /// across repeated passes at a fixed graph size (the no-allocation
    /// property the engine tests pin down).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        8 * (self.dead.capacity()
            + self.dead_sum.capacity()
            + self.fwd.capacity()
            + self.bwd.capacity()
            + self.vis.capacity()
            + self.cur.bits.capacity()
            + self.cur.sum.capacity()
            + self.nxt.bits.capacity()
            + self.nxt.sum.capacity())
            + 4 * (self.cur.queue.capacity() + self.nxt.queue.capacity())
    }
}

/// Shadow race detection for [`AtomicCells`] — the `racecheck` feature.
///
/// The single-writer-per-word-per-phase protocol the sweep kernels rely
/// on is a *claim* about writer scheduling, which ThreadSanitizer cannot
/// check (to TSan every relaxed atomic access is race-free by
/// definition). This module turns the claim into an executable
/// assertion: every [`AtomicCells`] write stamps a shadow word with
/// `(mode, writer thread, phase epoch)` — the epoch is the global
/// counter `shardpool::racecheck` bumps at every synchronisation edge —
/// and panics the moment a second thread writes the same word inside
/// the same epoch. Concurrent `fetch_min`/`fetch_min` pairs are exempt:
/// a commutative min-reduction is the one sanctioned multi-writer use.
///
/// Detection is sound but deliberately one-sided: writer-id aliasing
/// (beyond ~32k threads) or an epoch bump landing between two racing
/// writes can mask a report, never fabricate one. Running the full
/// differential suites under `--features racecheck` is therefore a
/// probabilistic race hunt with zero false alarms by construction.
#[cfg(feature = "racecheck")]
pub mod racecheck {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// How a cell was written. `Min`/`Min` is the one combination two
    /// threads may legally perform on a word in the same phase.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub(crate) enum Mode {
        Store,
        Min,
    }

    const EPOCH_BITS: u32 = 48;
    const EPOCH_MASK: u64 = (1 << EPOCH_BITS) - 1;
    const WRITER_MASK: u64 = (1 << 15) - 1;

    static NEXT_WRITER: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static WRITER: u64 = NEXT_WRITER.fetch_add(1, Ordering::SeqCst) & WRITER_MASK;
    }

    /// Declares a synchronisation edge for fork/join code that does not
    /// go through the shard pool (`std::thread::scope` spawn and join):
    /// writes before the edge belong to a different phase than writes
    /// after it, exactly as a barrier crossing would establish.
    pub fn sync_edge() {
        shardpool::racecheck::bump();
    }

    /// One shadow word per cell, packed `mode:1 | writer:15 | epoch:48`.
    /// Zero means "never written" (real epochs start at 1).
    #[derive(Debug, Default)]
    pub(crate) struct Shadow(Vec<AtomicU64>);

    impl Shadow {
        pub(crate) fn of_len(len: usize) -> Self {
            let mut s = Shadow::default();
            s.grow(len);
            s
        }

        pub(crate) fn grow(&mut self, len: usize) {
            if self.0.len() < len {
                self.0.resize_with(len, AtomicU64::default);
            }
        }

        /// Stamps cell `i` with `(mode, this thread, current epoch)` and
        /// panics if the previous stamp proves a second writer touched
        /// the word inside the same phase epoch. The stamp is a single
        /// `swap`, so of two racing writers at least one observes the
        /// other and reports.
        pub(crate) fn record(&self, i: usize, mode: Mode) {
            let epoch = shardpool::racecheck::epoch() & EPOCH_MASK;
            let me = WRITER.with(|w| *w);
            let mode_bit = match mode {
                Mode::Store => 0u64,
                Mode::Min => 1,
            };
            let pack = (mode_bit << 63) | (me << EPOCH_BITS) | epoch;
            let prev = self.0[i].swap(pack, Ordering::SeqCst);
            if prev == 0 {
                return;
            }
            let pmode = prev >> 63;
            let pwriter = (prev >> EPOCH_BITS) & WRITER_MASK;
            let pepoch = prev & EPOCH_MASK;
            if pepoch == epoch && pwriter != me && !(pmode == 1 && mode == Mode::Min) {
                panic!(
                    "racecheck: two writers (thread {pwriter} {} then thread {me} \
                     {mode:?}) hit cell {i} in phase epoch {epoch} — \
                     single-writer-per-word-per-phase violated",
                    if pmode == 1 { "Min" } else { "Store" },
                );
            }
        }
    }
}

/// A growable vector of relaxed-atomic u64 cells — the shared-write
/// buffers of the multi-shard passes, governed by the **enforced**
/// single-writer-per-word-per-phase protocol: within one phase (the span
/// between two synchronisation edges — barrier crossings, the pool's job
/// publish/drain, or an explicit `racecheck::sync_edge`) every cell has
/// exactly one writing thread, and the edges provide the ordering, so
/// all accesses are `Relaxed` (plain loads/stores on every mainstream
/// ISA). [`fetch_min`](Self::fetch_min) is the one sanctioned
/// multi-writer operation: a commutative cross-shard min-reduction
/// ordered by the cell's own RMW rather than by phases.
///
/// In a normal build the protocol is documentation; under
/// `--features racecheck` every write is checked against a shadow word
/// recording `(writer thread, phase epoch)` and a violation panics with
/// the offending cell and threads.
#[derive(Debug, Default)]
pub struct AtomicCells {
    cells: Vec<AtomicU64>,
    #[cfg(feature = "racecheck")]
    shadow: racecheck::Shadow,
}

impl Clone for AtomicCells {
    fn clone(&self) -> Self {
        AtomicCells {
            cells: self
                .cells
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            // The clone starts with a clean write history of its own.
            #[cfg(feature = "racecheck")]
            shadow: racecheck::Shadow::of_len(self.cells.len()),
        }
    }
}

impl AtomicCells {
    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the vector holds no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Grows to at least `len` zeroed cells without shrinking.
    pub fn grow(&mut self, len: usize) {
        if self.cells.len() < len {
            self.cells.resize_with(len, AtomicU64::default);
        }
        #[cfg(feature = "racecheck")]
        self.shadow.grow(self.cells.len());
    }

    /// Relaxed load of cell `i`.
    #[inline]
    #[must_use]
    pub fn load(&self, i: usize) -> u64 {
        self.cells[i].load(Ordering::Relaxed)
    }

    /// Relaxed store to cell `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        #[cfg(feature = "racecheck")]
        self.shadow.record(i, racecheck::Mode::Store);
        self.cells[i].store(v, Ordering::Relaxed);
    }

    /// Relaxed atomic minimum on cell `i` (for cross-shard min-reductions).
    #[inline]
    pub fn fetch_min(&self, i: usize, v: u64) {
        #[cfg(feature = "racecheck")]
        self.shadow.record(i, racecheck::Mode::Min);
        self.cells[i].fetch_min(v, Ordering::Relaxed);
    }

    /// Bytes currently reserved (the racecheck shadow, when compiled in,
    /// is detector bookkeeping and deliberately not counted — the
    /// no-allocation property tests must see identical numbers with and
    /// without the feature).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        8 * self.cells.capacity()
    }
}

/// The shared-write cells of the multi-shard parallel passes: the active
/// visited bitmap, the ping-pong frontier bitmaps, and the per-level
/// bookkeeping (double-buffered by level parity so the pass needs only
/// one barrier per level).
#[derive(Debug, Default)]
struct ParCells {
    /// Visited bitmap of the running pass (copied back into the plain
    /// [`BitScratch`] set when the pass finishes).
    vis: AtomicCells,
    /// Ping-pong frontier bitmaps (`front[pp]` is the current level).
    front: [AtomicCells; 2],
    /// Per-shard newly-visited counts of a dense level, `2 × shards`
    /// cells indexed `parity * shards + shard` — a level's slots are only
    /// rewritten two levels later, after every shard has read them.
    counts: AtomicCells,
    /// Frontier length published by shard 0 after a sparse level, one
    /// slot per level parity.
    sparse_len: [AtomicUsize; 2],
}

impl Clone for ParCells {
    fn clone(&self) -> Self {
        ParCells {
            vis: self.vis.clone(),
            front: self.front.clone(),
            counts: self.counts.clone(),
            sparse_len: self
                .sparse_len
                .each_ref()
                .map(|l| AtomicUsize::new(l.load(Ordering::Relaxed))),
        }
    }
}

/// The state of the multi-shard parallel passes: the shared-write cell
/// buffers plus the persistent worker pool that executes them. Buffers
/// are grow-only, like [`BitScratch`], and the pool spawns its threads
/// once on first use — after the first parallel pass at a given shape
/// and shard count no method allocates and no thread is spawned.
#[derive(Debug, Default)]
pub struct ParBitScratch {
    cells: ParCells,
    pool: ShardPool,
}

impl Clone for ParBitScratch {
    fn clone(&self) -> Self {
        // The clone gets its own (lazily spawned) worker pool.
        ParBitScratch {
            cells: self.cells.clone(),
            pool: ShardPool::new(),
        }
    }
}

impl ParBitScratch {
    /// Creates an empty scratch; buffers are sized (and pool threads
    /// spawned) by the first parallel pass.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently reserved by the scratch's cell buffers (the
    /// pool's threads hold no engine buffers and are not counted).
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.cells.vis.allocated_bytes()
            + self.cells.front[0].allocated_bytes()
            + self.cells.front[1].allocated_bytes()
            + self.cells.counts.allocated_bytes()
    }

    /// Grows the buffers to `reach`'s shape and `shards` workers.
    fn prepare(&mut self, reach: &BitReach, shards: usize) {
        self.cells.vis.grow(reach.words);
        self.cells.front[0].grow(reach.words);
        self.cells.front[1].grow(reach.words);
        self.cells.counts.grow(2 * shards);
    }
}

/// The contiguous word range shard `shard` of `shards` owns out of
/// `words` total (the same even split at every call site, so fold and
/// expand ranges always tile their buffers).
pub(crate) fn shard_words(words: usize, shards: usize, shard: usize) -> std::ops::Range<usize> {
    let per = words.div_ceil(shards.max(1));
    (shard * per).min(words)..((shard + 1) * per).min(words)
}

/// Smallest graph that justifies a second shard: below one shard per
/// 2^16 nodes the per-level barrier waits outweigh the sweep work each
/// extra shard takes off the critical path (measured in PERF.md).
pub const MIN_NODES_PER_SHARD: usize = 1 << 16;

/// Stack-tile width (in `u64` words) of the fused dense kernel's
/// backward path: folds are blocked into a `[u64; FUSE_TILE]` register
/// /L1 buffer so each replication stride sweeps a contiguous run. 32
/// words = 256 bytes per tile — four cache lines, far below any L1.
const FUSE_TILE: usize = 32;

/// The shard count actually worth running for a `requested` count on an
/// `n_nodes`-node graph: clamped to the machine's
/// `available_parallelism` (a shard beyond the core count only adds
/// barrier traffic) and to one shard per [`MIN_NODES_PER_SHARD`] nodes
/// (a shard without enough words to sweep can't amortise its waits).
/// Never below 1. `Ffc`, `RingMaintainer` and `RingService` apply this
/// clamp, so asking for 8 shards on a small box or a small graph
/// degrades to near-serial cost instead of regressing; the raw
/// `BitReach::*_par` passes do **not** clamp (the differential tests
/// rely on forcing any shard count).
#[must_use]
pub fn effective_shards(requested: usize, n_nodes: usize) -> usize {
    // `available_parallelism` is not a cheap syscall on Linux — it
    // re-parses the cgroup cpu quota files every call, tens of µs in a
    // container — and this clamp sits on the per-embed path.
    static CPUS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    let cpus = *CPUS.get_or_init(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    requested
        .max(1)
        .min(cpus)
        .min((n_nodes / MIN_NODES_PER_SHARD).max(1))
}

/// The bit-parallel reachability engine for one B(d,n) shape: word-level
/// constants plus the three direction-optimizing passes the FFC embedding
/// runs (forward, backward, broadcast).
#[derive(Clone, Copy, Debug)]
pub struct BitReach {
    d: usize,
    n_nodes: usize,
    /// d^(n−1) — the chunk size of the fold/replicate direction.
    suffix: usize,
    /// Live words of every bitmap (`ceil(n_nodes / 64)`).
    words: usize,
    /// `suffix / 64` — fold-buffer words (0 when dense sweeps are off).
    suffix_words: usize,
    /// log2 d (meaningful only when `pow2`).
    d_log: u32,
    /// log2 d^(n−1) (meaningful only when `pow2`).
    suffix_log: u32,
    /// Power-of-two d: scalar walks use masks/shifts instead of divisions.
    pow2: bool,
    /// Dense sweeps available: pow2, d ≤ 64, chunks word-aligned.
    dense_capable: bool,
    policy: DensePolicy,
}

impl BitReach {
    /// The engine for B(d,n) given `d` and `n_nodes = d^n`, with the
    /// production [`DensePolicy::Auto`].
    ///
    /// # Panics
    /// Panics if the node ids do not fit the engine's u32 indexing
    /// ([`BitReach::try_new`] is the non-panicking variant).
    #[must_use]
    pub fn new(d: usize, n_nodes: usize) -> Self {
        Self::with_policy(d, n_nodes, DensePolicy::Auto)
    }

    /// [`BitReach::new`], rejecting spaces whose node ids overflow the
    /// engine's u32 indexing with a typed error instead of panicking.
    ///
    /// # Errors
    /// Returns [`SpaceTooLarge`] when `n_nodes > u32::MAX` — in release
    /// builds the queue and CSR stores would otherwise silently truncate
    /// ids (`v as u32`).
    pub fn try_new(d: usize, n_nodes: usize) -> Result<Self, SpaceTooLarge> {
        Self::try_with_policy(d, n_nodes, DensePolicy::Auto)
    }

    /// [`BitReach::try_new`] with an explicit density policy.
    ///
    /// # Errors
    /// Returns [`SpaceTooLarge`] when `n_nodes` exceeds [`u32::MAX`].
    ///
    /// # Panics
    /// Panics if `n_nodes` is not `d` times a whole suffix count.
    pub fn try_with_policy(
        d: usize,
        n_nodes: usize,
        policy: DensePolicy,
    ) -> Result<Self, SpaceTooLarge> {
        if u32::try_from(n_nodes).is_err() {
            return Err(SpaceTooLarge {
                n_nodes: Some(n_nodes as u64),
            });
        }
        Ok(Self::with_policy(d, n_nodes, policy))
    }

    /// [`BitReach::new`] with an explicit density policy (the differential
    /// tests pin `Never == Auto == Always`).
    ///
    /// # Panics
    /// Panics if `n_nodes` is not `d` times a whole suffix count, or if
    /// the node ids do not fit the engine's u32 indexing.
    #[must_use]
    pub fn with_policy(d: usize, n_nodes: usize, policy: DensePolicy) -> Self {
        assert!(d >= 2, "alphabet size d must be at least 2");
        assert_eq!(n_nodes % d, 0, "n_nodes must be d^n");
        assert!(
            u32::try_from(n_nodes).is_ok(),
            "the engine indexes nodes with u32; {n_nodes} nodes is too large \
             (use BitReach::try_new to handle this without panicking)"
        );
        let suffix = n_nodes / d;
        let pow2 = d.is_power_of_two() && suffix.is_power_of_two();
        let dense_capable = pow2 && d <= 64 && suffix.is_multiple_of(64);
        BitReach {
            d,
            n_nodes,
            suffix,
            words: n_nodes.div_ceil(64),
            suffix_words: if dense_capable { suffix / 64 } else { 0 },
            d_log: d.trailing_zeros(),
            suffix_log: suffix.trailing_zeros(),
            pow2,
            dense_capable,
            policy,
        }
    }

    /// Whether this shape can run the word-parallel bottom-up sweeps.
    #[must_use]
    pub fn dense_capable(&self) -> bool {
        self.dense_capable
    }

    /// Grows the scratch to this shape and clears the fault bitmap; call
    /// once per embedding before [`BitReach::kill`]ing the faulty nodes.
    pub fn prepare(&self, s: &mut BitScratch) {
        let sw = sum_words(self.words);
        grow_words(&mut s.dead, self.words);
        grow_words(&mut s.dead_sum, sw);
        grow_words(&mut s.fwd, self.words);
        grow_words(&mut s.bwd, self.words);
        grow_words(&mut s.vis, self.words);
        grow_words(&mut s.cur.bits, self.words);
        grow_words(&mut s.cur.sum, sw);
        grow_words(&mut s.nxt.bits, self.words);
        grow_words(&mut s.nxt.sum, sw);
        // A level can hold every node; presize so pushes never reallocate.
        crate::ffc::reserve(&mut s.cur.queue, self.n_nodes);
        crate::ffc::reserve(&mut s.nxt.queue, self.n_nodes);
        if s.dead_words == self.words {
            // Skip-clear: only the words a previous kill dirtied. Fault
            // masks carry a handful of necklaces, so this replaces an
            // O(words) sweep with O(faulty words) on the repeat-call path
            // (sweeps, churn, serve all re-prepare per embedding).
            for (sj, sword) in s.dead_sum[..sw].iter_mut().enumerate() {
                let mut w = std::mem::take(sword);
                while w != 0 {
                    let j = sj * 64 + w.trailing_zeros() as usize;
                    s.dead[j] = 0;
                    w &= w - 1;
                }
            }
        } else {
            s.dead[..self.words].fill(0);
            s.dead_sum[..sw].fill(0);
            s.dead_words = self.words;
        }
        debug_assert!(s.dead[..self.words].iter().all(|&w| w == 0));
    }

    /// Marks node `v` dead (member of a faulty necklace).
    #[inline]
    pub fn kill(&self, s: &mut BitScratch, v: usize) {
        debug_assert!(v < self.n_nodes);
        s.dead[v / 64] |= 1u64 << (v % 64);
        s.dead_sum[v >> 12] |= 1u64 << ((v >> 6) & 63);
    }

    /// Whether node `v` was marked dead this call.
    #[inline]
    #[must_use]
    pub fn is_dead(&self, s: &BitScratch, v: usize) -> bool {
        s.dead[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Whether `v` lies in B* — forward- and backward-reachable and live.
    /// Valid after [`BitReach::forward`] and [`BitReach::backward`].
    #[inline]
    #[must_use]
    pub fn in_bstar(&self, s: &BitScratch, v: usize) -> bool {
        let (j, m) = (v / 64, 1u64 << (v % 64));
        s.fwd[j] & s.bwd[j] & !s.dead[j] & m != 0
    }

    /// Forward BFS from `root` over live nodes. Returns `(reached, depth)`
    /// where `reached` counts live forward-reachable nodes including the
    /// root and `depth` is the last level with a new node — the broadcast
    /// eccentricity whenever B* turns out to equal the forward set.
    pub fn forward(&self, s: &mut BitScratch, root: usize) -> (usize, usize) {
        let BitScratch {
            dead,
            fwd,
            cur,
            nxt,
            ..
        } = s;
        fwd[..self.words].copy_from_slice(&dead[..self.words]);
        if self.pow2 {
            self.run::<true, false>(fwd, cur, nxt, root, None)
        } else {
            self.run::<false, false>(fwd, cur, nxt, root, None)
        }
    }

    /// Backward BFS from `root` over live nodes (visited set left in the
    /// scratch for [`BitReach::component_size`] / [`BitReach::in_bstar`]).
    pub fn backward(&self, s: &mut BitScratch, root: usize) {
        let BitScratch {
            dead,
            bwd,
            cur,
            nxt,
            ..
        } = s;
        bwd[..self.words].copy_from_slice(&dead[..self.words]);
        if self.pow2 {
            self.run::<true, true>(bwd, cur, nxt, root, None);
        } else {
            self.run::<false, true>(bwd, cur, nxt, root, None);
        }
    }

    /// |B*| after the two passes: the popcount of `fwd ∧ bwd` minus the
    /// `removed_nodes` dead bits (dead nodes are pre-visited in both sets).
    #[must_use]
    pub fn component_size(&self, s: &BitScratch, removed_nodes: usize) -> usize {
        let both: usize = s.fwd[..self.words]
            .iter()
            .zip(&s.bwd[..self.words])
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum();
        both - removed_nodes
    }

    /// The broadcast restricted to B*, levels only: returns the
    /// eccentricity of `root` within B*. Requires the forward and backward
    /// passes to have run.
    pub fn broadcast_depth(&self, s: &mut BitScratch, root: usize) -> usize {
        self.broadcast(s, root, None).1
    }

    /// The broadcast restricted to B*, emitting every reached node level
    /// by level: `nodes` receives the nodes (cleared first), `offsets` the
    /// CSR level boundaries (`offsets[l]..offsets[l+1]` is level `l`;
    /// `offsets.len()` ends up `depth + 2`). Returns `(reached, depth)`.
    /// The within-level order is unspecified (discovery order top-down,
    /// increasing id bottom-up) — callers must not depend on it.
    pub fn broadcast_levels(
        &self,
        s: &mut BitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
    ) -> (usize, usize) {
        nodes.clear();
        offsets.clear();
        self.broadcast(s, root, Some(LevelSink { nodes, offsets }))
    }

    /// Shared broadcast setup: visited starts as "outside B* or dead".
    fn broadcast(
        &self,
        s: &mut BitScratch,
        root: usize,
        sink: Option<LevelSink<'_>>,
    ) -> (usize, usize) {
        let BitScratch {
            dead,
            fwd,
            bwd,
            vis,
            cur,
            nxt,
            ..
        } = s;
        for (((v, &f), &b), &x) in vis[..self.words]
            .iter_mut()
            .zip(&fwd[..self.words])
            .zip(&bwd[..self.words])
            .zip(&dead[..self.words])
        {
            *v = !(f & b) | x;
        }
        if self.pow2 {
            self.run::<true, false>(vis, cur, nxt, root, sink)
        } else {
            self.run::<false, false>(vis, cur, nxt, root, sink)
        }
    }

    // ------------------------------------------------------------------
    // The multi-shard parallel passes.
    // ------------------------------------------------------------------

    /// [`BitReach::forward`] sharded over `shards` scoped threads —
    /// bit-identical results (visited set, count, depth) at any shard
    /// count. Delegates to the serial pass when `shards <= 1` or the
    /// shape cannot run dense sweeps.
    pub fn forward_par(
        &self,
        s: &mut BitScratch,
        par: &mut ParBitScratch,
        root: usize,
        shards: usize,
    ) -> (usize, usize) {
        if shards <= 1 || !self.dense_capable {
            return self.forward(s, root);
        }
        par.prepare(self, shards);
        let BitScratch {
            dead,
            fwd,
            cur,
            nxt,
            ..
        } = s;
        fwd[..self.words].copy_from_slice(&dead[..self.words]);
        self.run_par::<false>(fwd, &mut cur.queue, &mut nxt.queue, par, root, shards, None)
    }

    /// [`BitReach::backward`] sharded over `shards` scoped threads (see
    /// [`BitReach::forward_par`] for the delegation rules).
    pub fn backward_par(
        &self,
        s: &mut BitScratch,
        par: &mut ParBitScratch,
        root: usize,
        shards: usize,
    ) {
        if shards <= 1 || !self.dense_capable {
            return self.backward(s, root);
        }
        par.prepare(self, shards);
        let BitScratch {
            dead,
            bwd,
            cur,
            nxt,
            ..
        } = s;
        bwd[..self.words].copy_from_slice(&dead[..self.words]);
        let _ = self.run_par::<true>(bwd, &mut cur.queue, &mut nxt.queue, par, root, shards, None);
    }

    /// [`BitReach::broadcast_levels`] sharded over `shards` scoped
    /// threads. The emitted nodes and CSR offsets are **byte-identical**
    /// to the serial pass at any shard count: the parallel pass follows
    /// the identical sparse/dense regime schedule (the switch depends
    /// only on the global frontier length), sparse levels are emitted in
    /// the serial discovery order by shard 0, and dense levels in
    /// increasing id order like the serial bottom-up sweep.
    pub fn broadcast_levels_par(
        &self,
        s: &mut BitScratch,
        par: &mut ParBitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
        shards: usize,
    ) -> (usize, usize) {
        if shards <= 1 || !self.dense_capable {
            return self.broadcast_levels(s, root, nodes, offsets);
        }
        par.prepare(self, shards);
        let BitScratch {
            dead,
            fwd,
            bwd,
            vis,
            cur,
            nxt,
            ..
        } = s;
        for (((v, &f), &b), &x) in vis[..self.words]
            .iter_mut()
            .zip(&fwd[..self.words])
            .zip(&bwd[..self.words])
            .zip(&dead[..self.words])
        {
            *v = !(f & b) | x;
        }
        nodes.clear();
        offsets.clear();
        self.run_par::<false>(
            vis,
            &mut cur.queue,
            &mut nxt.queue,
            par,
            root,
            shards,
            Some(LevelSink { nodes, offsets }),
        )
    }

    /// [`BitReach::broadcast_levels`] fused with the B* mask: one
    /// chunk-streamed pass over (fwd, bwd, dead, vis) writes the B*
    /// membership words (`fwd ∧ bwd ∧ ¬dead`) into `bstar`, counts |B*|
    /// and initialises the broadcast visited set to the complement —
    /// replacing the separate vis-init sweep, B*-bitmap sweep and
    /// popcount the session's rebuild used to run back-to-back over the
    /// full arrays. Returns `(bstar_count, reached, depth)`; the level
    /// emission is unchanged.
    pub fn broadcast_levels_bstar(
        &self,
        s: &mut BitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
        bstar: &mut [u64],
    ) -> (usize, usize, usize) {
        let count = self.bstar_init(s, bstar);
        let BitScratch { vis, cur, nxt, .. } = s;
        nodes.clear();
        offsets.clear();
        let sink = Some(LevelSink { nodes, offsets });
        let (reached, depth) = if self.pow2 {
            self.run::<true, false>(vis, cur, nxt, root, sink)
        } else {
            self.run::<false, false>(vis, cur, nxt, root, sink)
        };
        (count, reached, depth)
    }

    /// [`BitReach::broadcast_levels_bstar`] sharded over `shards` scoped
    /// threads (emission byte-identical to the serial pass, like
    /// [`BitReach::broadcast_levels_par`]). The fused init itself stays
    /// on the caller thread — it is a single streamed pass, cheaper than
    /// a barrier round-trip.
    #[allow(clippy::too_many_arguments)] // the fused rebuild pass, not an API
    pub fn broadcast_levels_bstar_par(
        &self,
        s: &mut BitScratch,
        par: &mut ParBitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
        bstar: &mut [u64],
        shards: usize,
    ) -> (usize, usize, usize) {
        if shards <= 1 || !self.dense_capable {
            return self.broadcast_levels_bstar(s, root, nodes, offsets, bstar);
        }
        let count = self.bstar_init(s, bstar);
        par.prepare(self, shards);
        let BitScratch { vis, cur, nxt, .. } = s;
        nodes.clear();
        offsets.clear();
        let (reached, depth) = self.run_par::<false>(
            vis,
            &mut cur.queue,
            &mut nxt.queue,
            par,
            root,
            shards,
            Some(LevelSink { nodes, offsets }),
        );
        (count, reached, depth)
    }

    /// The fused chunk-streamed broadcast initialisation: per
    /// [`FUSE_TILE`]-word chunk, the four bitmaps are read/written
    /// together while resident, producing the B* mask, its popcount and
    /// the seeded visited set in a single memory pass.
    fn bstar_init(&self, s: &mut BitScratch, bstar: &mut [u64]) -> usize {
        let BitScratch {
            dead,
            fwd,
            bwd,
            vis,
            ..
        } = s;
        let mut count = 0usize;
        let mut j = 0usize;
        while j < self.words {
            let len = (self.words - j).min(FUSE_TILE);
            for k in j..j + len {
                let m = fwd[k] & bwd[k] & !dead[k];
                bstar[k] = m;
                vis[k] = !m;
                count += m.count_ones() as usize;
            }
            j += len;
        }
        count
    }

    /// The sharded direction-optimizing pass: shard 0 (the caller thread)
    /// leads — it runs the scalar sparse levels, the sink emission and
    /// the representation conversions — while `shards - 1` persistent
    /// pool workers join it for the word-range-sharded fused dense
    /// levels. One sense-reversing barrier per level (plus one more only
    /// on a sparse→dense flip) keeps the single-writer-per-word
    /// discipline: per-level bookkeeping is double-buffered by level
    /// parity, the leader's emission of level L overlaps the workers
    /// already sweeping level L+1 (emission only reads the new frontier,
    /// which no one writes until after the *next* barrier), and on a
    /// dense→sparse flip the workers have nothing to compute, so the
    /// leader's conversions race nothing. `vis` arrives seeded (dead /
    /// out-of-scope bits set) and receives the final visited bitmap back.
    #[allow(clippy::too_many_arguments)] // one pass kernel, not an API
    fn run_par<const BACKWARD: bool>(
        &self,
        vis: &mut [u64],
        qcur: &mut Vec<u32>,
        qnxt: &mut Vec<u32>,
        par: &mut ParBitScratch,
        root: usize,
        shards: usize,
        mut sink: Option<LevelSink<'_>>,
    ) -> (usize, usize) {
        debug_assert!(self.dense_capable && shards > 1);
        debug_assert!(root < self.n_nodes, "root out of range");
        debug_assert!(vis[root / 64] & (1 << (root % 64)) == 0, "root not live");
        let ParBitScratch { cells, pool } = par;
        vis[root / 64] |= 1 << (root % 64);
        for (i, &w) in vis[..self.words].iter().enumerate() {
            cells.vis.store(i, w);
        }
        qcur.clear();
        qcur.push(root as u32);
        let init_dense = self.want_dense(1, false);
        if init_dense {
            for i in 0..self.words {
                cells.front[0].store(i, 0);
            }
            cells.front[0].store(root / 64, 1u64 << (root % 64));
        }
        if let Some(sink) = sink.as_mut() {
            sink.offsets.push(0);
            sink.nodes.push(root as u32);
        }
        // Publishing the job to the pool is the happens-before edge that
        // makes the serial seeding above visible to the workers.
        let barrier = SenseBarrier::new(shards);
        let cells = &*cells;
        let worker = |shard: usize| {
            let srange = shard_words(self.suffix_words, shards, shard);
            let mut cur_dense = init_dense;
            let mut pp = 0usize;
            let mut parity = 0usize;
            loop {
                if cur_dense {
                    let newly = self.par_fused::<BACKWARD>(cells, pp, srange.clone());
                    cells.counts.store(parity * shards + shard, newly as u64);
                }
                barrier.wait();
                let nxt_len = level_len(cells, shards, parity, cur_dense);
                if nxt_len == 0 {
                    return;
                }
                let want = self.want_dense(nxt_len, cur_dense);
                // A sparse→dense flip needs the leader to materialise the
                // dense frontier before anyone sweeps it: the one extra
                // barrier. Every shard replays the same regime decisions
                // (they depend only on the shared level lengths), so the
                // barrier sequences always agree.
                if !cur_dense && want {
                    barrier.wait();
                }
                pp ^= 1;
                parity ^= 1;
                cur_dense = want;
            }
        };
        let (count, depth) = pool.run(shards - 1, &worker, || {
            // Shard 0: the leader loop.
            let srange = shard_words(self.suffix_words, shards, 0);
            let mut cur_dense = init_dense;
            let mut pp = 0usize;
            let mut parity = 0usize;
            let mut count = 1usize;
            let mut depth = 0usize;
            loop {
                if cur_dense {
                    let newly = self.par_fused::<BACKWARD>(cells, pp, srange.clone());
                    cells.counts.store(parity * shards, newly as u64);
                } else {
                    self.par_step_sparse::<BACKWARD>(cells, qcur, qnxt);
                    cells.sparse_len[parity].store(qnxt.len(), Ordering::Relaxed);
                }
                barrier.wait();
                let nxt_len = level_len(cells, shards, parity, cur_dense);
                if nxt_len == 0 {
                    break;
                }
                count += nxt_len;
                depth += 1;
                if let Some(sink) = sink.as_mut() {
                    if cur_dense {
                        emit_cells(sink, &cells.front[pp ^ 1], self.words);
                    } else {
                        emit_queue(sink, qnxt);
                    }
                }
                let want = self.want_dense(nxt_len, cur_dense);
                match (cur_dense, want) {
                    // Stay sparse: the new queue becomes current.
                    (false, false) => std::mem::swap(qcur, qnxt),
                    // Sparse → dense: materialise the new frontier bitmap
                    // where the flip will look for it, then release the
                    // workers waiting to sweep it.
                    (false, true) => {
                        for i in 0..self.words {
                            cells.front[pp ^ 1].store(i, 0);
                        }
                        for &v in qnxt.iter() {
                            let v = v as usize;
                            let j = v / 64;
                            cells.front[pp ^ 1]
                                .store(j, cells.front[pp ^ 1].load(j) | 1 << (v % 64));
                        }
                        barrier.wait();
                    }
                    // Dense → sparse: extract ids in increasing order
                    // (the serial conversion's order). The workers have
                    // no dense level to sweep, so nothing races this.
                    (true, false) => {
                        qcur.clear();
                        for j in 0..self.words {
                            let mut w = cells.front[pp ^ 1].load(j);
                            while w != 0 {
                                qcur.push((j * 64) as u32 + w.trailing_zeros());
                                w &= w - 1;
                            }
                        }
                    }
                    (true, true) => {}
                }
                pp ^= 1;
                parity ^= 1;
                cur_dense = want;
            }
            (count, depth)
        });
        if let Some(sink) = sink.as_mut() {
            sink.offsets.push(sink.nodes.len() as u32);
        }
        // Hand the visited bitmap back for component/B* queries.
        for (i, w) in vis[..self.words].iter_mut().enumerate() {
            *w = cells.vis.load(i);
        }
        (count, depth)
    }

    /// One shard's share of a fused dense level: the fused kernel of
    /// [`BitReach::fused_words`] on the atomic cells, over suffix-word
    /// `range` — the output words it writes (`d·i + r` forward,
    /// `i + a·sw` backward) tile the bitmaps across shards, so every
    /// word has exactly one writer per level. Reads of the *current*
    /// frontier cross shard boundaries, which is what the per-level
    /// barrier orders. Returns the shard's newly visited count.
    fn par_fused<const BACKWARD: bool>(
        &self,
        cells: &ParCells,
        pp: usize,
        range: std::ops::Range<usize>,
    ) -> usize {
        let d = self.d;
        let sw = self.suffix_words;
        let bits_per = 64 / d;
        let chunk_mask = if bits_per == 64 {
            u64::MAX
        } else {
            (1u64 << bits_per) - 1
        };
        let cur = &cells.front[pp];
        let nxt = &cells.front[pp ^ 1];
        let mut newly = 0usize;
        if BACKWARD {
            for i in range {
                let mut h = 0u64;
                for t in 0..d {
                    h |= self.squash(cur.load(d * i + t)) << (t * bits_per);
                }
                for a in 0..d {
                    let j = i + a * sw;
                    let seen = cells.vis.load(j);
                    let new = h & !seen;
                    cells.vis.store(j, seen | new);
                    nxt.store(j, new);
                    newly += new.count_ones() as usize;
                }
            }
        } else {
            for i in range {
                let mut g = 0u64;
                for a in 0..d {
                    g |= cur.load(i + a * sw);
                }
                for r in 0..d {
                    let j = d * i + r;
                    let seen = cells.vis.load(j);
                    let new = self.expand((g >> (r * bits_per)) & chunk_mask) & !seen;
                    cells.vis.store(j, seen | new);
                    nxt.store(j, new);
                    newly += new.count_ones() as usize;
                }
            }
        }
        newly
    }

    /// The leader's scalar sparse step on the shared visited bitmap —
    /// the atomic-cell twin of [`BitReach::step_sparse`] (parallel
    /// passes only run on dense-capable, hence power-of-two, shapes).
    fn par_step_sparse<const BACKWARD: bool>(
        &self,
        cells: &ParCells,
        qcur: &[u32],
        qnxt: &mut Vec<u32>,
    ) {
        debug_assert!(self.pow2);
        qnxt.clear();
        for &v in qcur {
            let v = v as usize;
            for a in 0..self.d {
                let u = if BACKWARD {
                    (v >> self.d_log) + (a << self.suffix_log)
                } else {
                    ((v & (self.suffix - 1)) << self.d_log) + a
                };
                let (j, m) = (u / 64, 1u64 << (u % 64));
                let seen = cells.vis.load(j);
                if seen & m == 0 {
                    cells.vis.store(j, seen | m);
                    qnxt.push(u as u32);
                }
            }
        }
    }

    /// One direction-optimizing BFS pass over `vis` (bits already set are
    /// never re-entered; the caller pre-sets dead / out-of-scope bits).
    /// Returns `(newly visited count incl. root, depth)`.
    fn run<const POW2: bool, const BACKWARD: bool>(
        &self,
        vis: &mut [u64],
        cur: &mut BitFrontier,
        nxt: &mut BitFrontier,
        root: usize,
        mut sink: Option<LevelSink<'_>>,
    ) -> (usize, usize) {
        debug_assert!(root < self.n_nodes, "root out of range");
        debug_assert!(vis[root / 64] & (1 << (root % 64)) == 0, "root not live");
        vis[root / 64] |= 1 << (root % 64);
        cur.reset_to(root as u32);
        if self.want_dense(cur.len, false) {
            cur.make_dense(self.words);
        }
        if let Some(sink) = sink.as_mut() {
            sink.offsets.push(0);
            sink.nodes.push(root as u32);
        }
        let mut count = 1usize;
        let mut depth = 0usize;
        loop {
            if cur.dense {
                self.step_dense::<BACKWARD>(vis, cur, nxt);
            } else {
                self.step_sparse::<POW2, BACKWARD>(vis, cur, nxt);
            }
            if nxt.len == 0 {
                break;
            }
            count += nxt.len;
            depth += 1;
            if let Some(sink) = sink.as_mut() {
                if nxt.dense {
                    emit_bits_sum(
                        sink,
                        &nxt.bits[..self.words],
                        &nxt.sum[..sum_words(self.words)],
                    );
                } else {
                    emit_queue(sink, &nxt.queue);
                }
            }
            // Pick the representation for the next expansion.
            let dense = self.want_dense(nxt.len, nxt.dense);
            if nxt.dense && !dense {
                nxt.make_sparse(self.words);
            } else if !nxt.dense && dense {
                nxt.make_dense(self.words);
            }
            std::mem::swap(cur, nxt);
        }
        if let Some(sink) = sink.as_mut() {
            sink.offsets.push(sink.nodes.len() as u32);
        }
        (count, depth)
    }

    /// Whether a frontier of `len` nodes should expand bottom-up. Under
    /// `Auto` the up- and down-switches use different thresholds
    /// ([`DENSE_SWITCH`] / [`SPARSE_SWITCH`]) so a frontier hovering at
    /// the boundary doesn't pay a conversion per level.
    fn want_dense(&self, len: usize, currently_dense: bool) -> bool {
        self.dense_capable
            && match self.policy {
                DensePolicy::Never => false,
                DensePolicy::Always => true,
                DensePolicy::Auto => {
                    let scale = if currently_dense {
                        SPARSE_SWITCH
                    } else {
                        DENSE_SWITCH
                    };
                    len * self.d * scale >= self.n_nodes
                }
            }
    }

    /// Scalar top-down step: walk the queue's edges, test-and-set bits.
    fn step_sparse<const POW2: bool, const BACKWARD: bool>(
        &self,
        vis: &mut [u64],
        cur: &BitFrontier,
        nxt: &mut BitFrontier,
    ) {
        debug_assert!(!cur.dense);
        nxt.queue.clear();
        for &v in &cur.queue {
            let v = v as usize;
            for a in 0..self.d {
                let u = if BACKWARD {
                    let base = if POW2 { v >> self.d_log } else { v / self.d };
                    base + if POW2 {
                        a << self.suffix_log
                    } else {
                        a * self.suffix
                    }
                } else {
                    let base = if POW2 {
                        (v & (self.suffix - 1)) << self.d_log
                    } else {
                        (v % self.suffix) * self.d
                    };
                    base + a
                };
                let (j, m) = (u / 64, 1u64 << (u % 64));
                if vis[j] & m == 0 {
                    vis[j] |= m;
                    nxt.queue.push(u as u32);
                }
            }
        }
        nxt.dense = false;
        nxt.len = nxt.queue.len();
    }

    /// Word-parallel bottom-up step: one fused pass of fold, expand (or
    /// squash/replicate), visited mask-and-update and next-frontier store
    /// — 64 nodes per handful of word ops, no fold scratch.
    fn step_dense<const BACKWARD: bool>(
        &self,
        vis: &mut [u64],
        cur: &BitFrontier,
        nxt: &mut BitFrontier,
    ) {
        debug_assert!(cur.dense && self.dense_capable);
        nxt.sum[..sum_words(self.words)].fill(0);
        nxt.len = self.fused_words::<BACKWARD, true>(&cur.bits, vis, &mut nxt.bits, &mut nxt.sum);
        nxt.dense = true;
    }

    /// One fused 2i-wide output tile of the d = 2 forward kernel: folds
    /// suffix word `i` over both leading digits, spreads each half into
    /// an output word, masks against visited and stores the frontier —
    /// all in registers, so the unrolled caller's four independent tiles
    /// autovectorize.
    #[inline(always)]
    fn fused2_fwd<const SUM: bool>(
        i: usize,
        sw: usize,
        cur: &[u64],
        vis: &mut [u64],
        nxt: &mut [u64],
        sum: &mut [u64],
    ) -> usize {
        let g = cur[i] | cur[sw + i];
        let w0 = spread2(g & 0xFFFF_FFFF) & !vis[2 * i];
        let w1 = spread2(g >> 32) & !vis[2 * i + 1];
        vis[2 * i] |= w0;
        vis[2 * i + 1] |= w1;
        nxt[2 * i] = w0;
        nxt[2 * i + 1] = w1;
        if SUM {
            // Words 2i and 2i+1 always share a summary word (2i is even).
            sum[(2 * i) >> 6] |=
                (u64::from(w0 != 0) << ((2 * i) & 63)) | (u64::from(w1 != 0) << ((2 * i + 1) & 63));
        }
        (w0.count_ones() + w1.count_ones()) as usize
    }

    /// The fused dense kernel over exactly `self.words` words of each
    /// buffer: per suffix word, fold (forward) or squash (backward) the
    /// frontier, expand/replicate, mask against `vis`, update `vis` and
    /// store the new frontier into `nxt` — one pass, no fold buffer.
    /// Word-for-word identical output to the retained two-phase
    /// reference kernel ([`BitReach::kernel_step_scalar`]); returns the
    /// newly visited node count. The hot d = 2 shape runs a 4-wide
    /// unrolled tile (eight output words per iteration). With `SUM` the
    /// kernel also maintains `sum`, the hierarchical summary of `nxt`
    /// (bit `j` ⟺ `nxt[j] != 0`), marking blocks as it streams each
    /// tile — the summary rides the tile already in registers/L1, so the
    /// downstream skip-scans come at near-zero kernel cost. With `SUM =
    /// false` (the raced public kernel) the summary code compiles out.
    fn fused_words<const BACKWARD: bool, const SUM: bool>(
        &self,
        cur: &[u64],
        vis: &mut [u64],
        nxt: &mut [u64],
        sum: &mut [u64],
    ) -> usize {
        debug_assert!(self.dense_capable);
        let sw = self.suffix_words;
        let mut newly = 0usize;
        if self.d == 2 {
            let mut i = 0usize;
            if BACKWARD {
                // Cache-blocked squash-then-replicate: fold a tile of
                // suffix words into a stack buffer, then sweep each
                // replication stride as one contiguous run. The fold
                // never touches the heap and both sweeps autovectorize.
                while i < sw {
                    let len = (sw - i).min(FUSE_TILE);
                    let mut h = [0u64; FUSE_TILE];
                    for (k, hk) in h[..len].iter_mut().enumerate() {
                        let b = 2 * (i + k);
                        *hk = squash2(cur[b]) | (squash2(cur[b + 1]) << 32);
                    }
                    for base in [i, sw + i] {
                        let vw = &mut vis[base..base + len];
                        let nw = &mut nxt[base..base + len];
                        let before = newly;
                        for ((vj, nj), &hk) in vw.iter_mut().zip(nw.iter_mut()).zip(h[..len].iter())
                        {
                            let new = hk & !*vj;
                            *vj |= new;
                            *nj = new;
                            newly += new.count_ones() as usize;
                        }
                        if SUM && newly != before {
                            mark_sum_range(sum, base, len);
                        }
                    }
                    i += len;
                }
            } else {
                while i + 4 <= sw {
                    newly += Self::fused2_fwd::<SUM>(i, sw, cur, vis, nxt, sum);
                    newly += Self::fused2_fwd::<SUM>(i + 1, sw, cur, vis, nxt, sum);
                    newly += Self::fused2_fwd::<SUM>(i + 2, sw, cur, vis, nxt, sum);
                    newly += Self::fused2_fwd::<SUM>(i + 3, sw, cur, vis, nxt, sum);
                    i += 4;
                }
                while i < sw {
                    newly += Self::fused2_fwd::<SUM>(i, sw, cur, vis, nxt, sum);
                    i += 1;
                }
            }
            return newly;
        }
        let d = self.d;
        let bits_per = 64 / d;
        let chunk_mask = if bits_per == 64 {
            u64::MAX
        } else {
            (1u64 << bits_per) - 1
        };
        if BACKWARD {
            // H = OR of the d-bit successor blocks of suffix word i: u is
            // a predecessor of the frontier iff H[u mod suffix] is set;
            // predecessor word i + a·sw replicates H for every digit a.
            // Cache-blocked like the d = 2 path: fold a stack tile, then
            // sweep each replication stride as one contiguous run.
            let mut i = 0usize;
            while i < sw {
                let len = (sw - i).min(FUSE_TILE);
                let mut h = [0u64; FUSE_TILE];
                for (k, hk) in h[..len].iter_mut().enumerate() {
                    let mut acc = 0u64;
                    for t in 0..d {
                        acc |= self.squash(cur[d * (i + k) + t]) << (t * bits_per);
                    }
                    *hk = acc;
                }
                for a in 0..d {
                    let base = i + a * sw;
                    let vw = &mut vis[base..base + len];
                    let nw = &mut nxt[base..base + len];
                    let before = newly;
                    for ((vj, nj), &hk) in vw.iter_mut().zip(nw.iter_mut()).zip(h[..len].iter()) {
                        let new = hk & !*vj;
                        *vj |= new;
                        *nj = new;
                        newly += new.count_ones() as usize;
                    }
                    if SUM && newly != before {
                        mark_sum_range(sum, base, len);
                    }
                }
                i += len;
            }
        } else {
            // G = OR over leading digits; successor word d·i + r expands
            // the r-th chunk of G. Tiled four suffix words at a time so
            // the fold reads four contiguous words per stride and the
            // expands write 4·d contiguous words.
            let mut i = 0usize;
            while i + 4 <= sw {
                let mut g = [0u64; 4];
                for a in 0..d {
                    let base = i + a * sw;
                    for (k, gk) in g.iter_mut().enumerate() {
                        *gk |= cur[base + k];
                    }
                }
                let before = newly;
                for (k, &gk) in g.iter().enumerate() {
                    for r in 0..d {
                        let j = d * (i + k) + r;
                        let new = self.expand((gk >> (r * bits_per)) & chunk_mask) & !vis[j];
                        vis[j] |= new;
                        nxt[j] = new;
                        newly += new.count_ones() as usize;
                    }
                }
                if SUM && newly != before {
                    mark_sum_range(sum, d * i, 4 * d);
                }
                i += 4;
            }
            while i < sw {
                let mut g = 0u64;
                for a in 0..d {
                    g |= cur[i + a * sw];
                }
                let before = newly;
                for r in 0..d {
                    let j = d * i + r;
                    let new = self.expand((g >> (r * bits_per)) & chunk_mask) & !vis[j];
                    vis[j] |= new;
                    nxt[j] = new;
                    newly += new.count_ones() as usize;
                }
                if SUM && newly != before {
                    mark_sum_range(sum, d * i, d);
                }
                i += 1;
            }
        }
        newly
    }

    /// The retained two-phase dense step — fold into the caller-supplied
    /// `fold` buffer (at least `suffix / 64` words), then expand against
    /// `vis` into `nxt` — kept as the bit-exact reference the fused
    /// kernel is pinned against (unit tests) and raced against
    /// (`bench_ffc --kernels`). All buffers cover `self.words` words.
    /// Returns the newly visited node count.
    ///
    /// # Panics
    /// Panics (in debug builds) if the shape is not dense-capable.
    pub fn kernel_step_scalar(
        &self,
        backward: bool,
        cur: &[u64],
        vis: &mut [u64],
        nxt: &mut [u64],
        fold: &mut [u64],
    ) -> usize {
        debug_assert!(self.dense_capable);
        let d = self.d;
        let bits_per = 64 / d;
        let chunk_mask = if bits_per == 64 {
            u64::MAX
        } else {
            (1u64 << bits_per) - 1
        };
        if backward {
            for (i, h) in fold[..self.suffix_words].iter_mut().enumerate() {
                let mut acc = 0u64;
                for t in 0..d {
                    acc |= self.squash(cur[d * i + t]) << (t * bits_per);
                }
                *h = acc;
            }
        } else {
            for (i, g) in fold[..self.suffix_words].iter_mut().enumerate() {
                let mut acc = 0u64;
                for a in 0..d {
                    acc |= cur[i + a * self.suffix_words];
                }
                *g = acc;
            }
        }
        let mut newly = 0usize;
        let mut j = 0usize;
        if backward {
            // P word j replicates H word (j mod suffix_words).
            for _a in 0..d {
                for &h in &fold[..self.suffix_words] {
                    let new = h & !vis[j];
                    vis[j] |= new;
                    nxt[j] = new;
                    newly += new.count_ones() as usize;
                    j += 1;
                }
            }
        } else {
            // S word j expands the (j mod d)-th chunk of G word (j div d).
            for &g in &fold[..self.suffix_words] {
                for r in 0..d {
                    let new = self.expand((g >> (r * bits_per)) & chunk_mask) & !vis[j];
                    vis[j] |= new;
                    nxt[j] = new;
                    newly += new.count_ones() as usize;
                    j += 1;
                }
            }
        }
        newly
    }

    /// The fused single-pass dense step the engine runs — same contract
    /// as [`BitReach::kernel_step_scalar`] minus the fold buffer.
    ///
    /// # Panics
    /// Panics (in debug builds) if the shape is not dense-capable.
    pub fn kernel_step_fused(
        &self,
        backward: bool,
        cur: &[u64],
        vis: &mut [u64],
        nxt: &mut [u64],
    ) -> usize {
        // SUM = false: the raced reference entry point stays summary-free
        // so the ≥1.0 kernel gate measures the sweep alone.
        if backward {
            self.fused_words::<true, false>(cur, vis, nxt, &mut [])
        } else {
            self.fused_words::<false, false>(cur, vis, nxt, &mut [])
        }
    }

    /// Duplicates each of the low 64/d bits of `x` into d adjacent bits.
    #[inline]
    fn expand(&self, x: u64) -> u64 {
        let mut x = x;
        for _ in 0..self.d_log {
            x = spread2(x);
        }
        x
    }

    /// ORs each aligned d-bit group of `x` into one of the low 64/d bits.
    #[inline]
    fn squash(&self, x: u64) -> u64 {
        let mut x = x;
        for _ in 0..self.d_log {
            x = squash2(x);
        }
        x
    }
}

impl BitReach {
    /// [`BitReach::forward`] with per-level node emission: identical
    /// visited set, count and depth, but every reached node is also
    /// emitted level by level into `nodes`/`offsets` (the same CSR shape
    /// as [`BitReach::broadcast_levels`]). This is the pass the
    /// incremental engine's [`crate::ffc::EmbedSession`] rebuilds its
    /// forward level array from.
    pub fn forward_levels(
        &self,
        s: &mut BitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
    ) -> (usize, usize) {
        let BitScratch {
            dead,
            fwd,
            cur,
            nxt,
            ..
        } = s;
        fwd[..self.words].copy_from_slice(&dead[..self.words]);
        nodes.clear();
        offsets.clear();
        let sink = Some(LevelSink { nodes, offsets });
        if self.pow2 {
            self.run::<true, false>(fwd, cur, nxt, root, sink)
        } else {
            self.run::<false, false>(fwd, cur, nxt, root, sink)
        }
    }

    /// [`BitReach::backward`] with per-level node emission (see
    /// [`BitReach::forward_levels`]); returns `(reached, depth)` of the
    /// backward pass.
    pub fn backward_levels(
        &self,
        s: &mut BitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
    ) -> (usize, usize) {
        let BitScratch {
            dead,
            bwd,
            cur,
            nxt,
            ..
        } = s;
        bwd[..self.words].copy_from_slice(&dead[..self.words]);
        nodes.clear();
        offsets.clear();
        let sink = Some(LevelSink { nodes, offsets });
        if self.pow2 {
            self.run::<true, true>(bwd, cur, nxt, root, sink)
        } else {
            self.run::<false, true>(bwd, cur, nxt, root, sink)
        }
    }

    /// [`BitReach::forward_levels`] sharded over `shards` scoped threads —
    /// emission bytes identical to the serial pass at any shard count
    /// (delegates like [`BitReach::forward_par`]).
    pub fn forward_levels_par(
        &self,
        s: &mut BitScratch,
        par: &mut ParBitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
        shards: usize,
    ) -> (usize, usize) {
        if shards <= 1 || !self.dense_capable {
            return self.forward_levels(s, root, nodes, offsets);
        }
        par.prepare(self, shards);
        let BitScratch {
            dead,
            fwd,
            cur,
            nxt,
            ..
        } = s;
        fwd[..self.words].copy_from_slice(&dead[..self.words]);
        nodes.clear();
        offsets.clear();
        self.run_par::<false>(
            fwd,
            &mut cur.queue,
            &mut nxt.queue,
            par,
            root,
            shards,
            Some(LevelSink { nodes, offsets }),
        )
    }

    /// [`BitReach::backward_levels`] sharded over `shards` scoped threads
    /// (delegates like [`BitReach::backward_par`]).
    pub fn backward_levels_par(
        &self,
        s: &mut BitScratch,
        par: &mut ParBitScratch,
        root: usize,
        nodes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
        shards: usize,
    ) -> (usize, usize) {
        if shards <= 1 || !self.dense_capable {
            return self.backward_levels(s, root, nodes, offsets);
        }
        par.prepare(self, shards);
        let BitScratch {
            dead,
            bwd,
            cur,
            nxt,
            ..
        } = s;
        bwd[..self.words].copy_from_slice(&dead[..self.words]);
        nodes.clear();
        offsets.clear();
        self.run_par::<true>(
            bwd,
            &mut cur.queue,
            &mut nxt.queue,
            par,
            root,
            shards,
            Some(LevelSink { nodes, offsets }),
        )
    }
}

// ----------------------------------------------------------------------
// The delta level-repair passes (incremental reachability).
// ----------------------------------------------------------------------

/// Returned by the delta passes when a repair's queue work exceeds the
/// caller's budget — the signal that a from-scratch recompute is cheaper
/// than continuing the delta (the [`crate::ffc::RingMaintainer`] then
/// falls back to a full rebuild).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaBudgetExceeded {
    /// Queue pops performed before giving up.
    pub pops: usize,
}

impl std::fmt::Display for DeltaBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delta level repair exceeded its work budget after {} queue pops",
            self.pops
        )
    }
}

impl std::error::Error for DeltaBudgetExceeded {}

/// Reusable state of the delta level-repair passes
/// ([`BitReach::levels_delete`] / [`BitReach::levels_insert`]): a
/// monotone two-level queue (during the drain every push lands exactly
/// one level above the level being processed, so a sorted seed list plus
/// a current/next ping-pong replaces a priority queue at O(1) per
/// operation), the changed-node log, and the deduplication stamps.
/// Grow-only; the queues are reserved to their worst case up front, so
/// repairs perform no heap allocation after warm-up at a fixed graph
/// size.
#[derive(Clone, Debug, Default)]
pub struct DeltaScratch {
    /// Seed entries as packed `level << 32 | node`, sorted ascending and
    /// merged into the drain level by level.
    seeds: Vec<u64>,
    /// Nodes pending at the level currently being drained.
    cur: Vec<u32>,
    /// Nodes pending one level up.
    nxt: Vec<u32>,
    /// The level each node is currently queued at (NONE-like
    /// [`UNREACHED`] = not queued) — dedups pushes and catches stale
    /// entries.
    pending: Vec<u32>,
    /// Nodes whose level changed in the most recent pass, in first-change
    /// order.
    changed: Vec<u32>,
    /// The pre-pass level of each changed node (parallel to `changed`;
    /// [`UNREACHED`] for nodes that entered the structure).
    old_levels: Vec<u32>,
    /// Per-node stamp marking "already logged this pass".
    changed_stamp: Vec<u32>,
    /// Monotone pass stamp for the log dedup.
    stamp: u32,
}

impl DeltaScratch {
    /// Creates an empty scratch; buffers are sized by the first pass.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The nodes whose level changed in the most recent pass (each node
    /// appears exactly once, in first-change order).
    #[must_use]
    pub fn changed_nodes(&self) -> &[u32] {
        &self.changed
    }

    /// The pre-pass levels of [`DeltaScratch::changed_nodes`], parallel to
    /// it ([`UNREACHED`] for nodes that entered the structure).
    #[must_use]
    pub fn old_levels(&self) -> &[u32] {
        &self.old_levels
    }

    /// `(node, pre-pass level)` pairs of the most recent pass.
    pub fn changed(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.changed
            .iter()
            .copied()
            .zip(self.old_levels.iter().copied())
    }

    /// Total bytes currently reserved by the scratch's buffers.
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        4 * (self.changed.capacity()
            + self.old_levels.capacity()
            + self.changed_stamp.capacity()
            + self.cur.capacity()
            + self.nxt.capacity()
            + self.pending.capacity())
            + 8 * self.seeds.capacity()
    }

    /// Starts a pass: advances the stamp, clears the log, and sizes the
    /// queues so the pass never reallocates.
    fn begin(&mut self, n_nodes: usize, seed_cap: usize) {
        if self.changed_stamp.len() < n_nodes {
            self.changed_stamp.resize(n_nodes, 0);
        }
        if self.pending.len() < n_nodes {
            self.pending.resize(n_nodes, UNREACHED);
        }
        if self.stamp == u32::MAX {
            self.changed_stamp.iter_mut().for_each(|s| *s = 0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.changed.clear();
        self.old_levels.clear();
        self.seeds.clear();
        self.cur.clear();
        self.nxt.clear();
        reserve_more(&mut self.seeds, seed_cap);
        reserve_more(&mut self.cur, n_nodes);
        reserve_more(&mut self.nxt, n_nodes);
        reserve_more(&mut self.changed, n_nodes);
        reserve_more(&mut self.old_levels, n_nodes);
    }

    /// Logs `v`'s first level change of this pass (later changes of the
    /// same node keep the original pre-pass level).
    #[inline]
    fn record(&mut self, v: u32, old: u32) {
        if self.changed_stamp[v as usize] != self.stamp {
            self.changed_stamp[v as usize] = self.stamp;
            self.changed.push(v);
            self.old_levels.push(old);
        }
    }

    /// Clears the pending markers of every still-queued entry (budget
    /// aborts leave the queues mid-drain).
    fn abort(&mut self) {
        for &u in self.cur.iter().chain(&self.nxt) {
            self.pending[u as usize] = UNREACHED;
        }
        for &e in &self.seeds {
            self.pending[(e & u64::from(u32::MAX)) as usize] = UNREACHED;
        }
        self.cur.clear();
        self.nxt.clear();
        self.seeds.clear();
    }
}

impl BitReach {
    /// Batch **node-deletion** repair of a BFS level array — the delta
    /// pass behind [`crate::ffc::RingMaintainer::add_fault`].
    ///
    /// `levels[v]` holds the BFS distance from a fixed root over the
    /// subgraph induced by `member` (with `UNREACHED` outside), following
    /// successor edges (`backward == false`) or predecessor edges
    /// (`backward == true`). The caller has just removed `deleted` from
    /// the membership (each of them must already test `!member`); this
    /// pass sets their levels to [`UNREACHED`], then repairs every other
    /// node whose distance grew, Even–Shiloach style: nodes are
    /// re-evaluated in increasing level order, a node with a surviving
    /// predecessor one level up stays put, and a node without one is
    /// bumped a level and its dependents re-enqueued, until the array
    /// again equals what a from-scratch BFS over the new membership would
    /// produce — **bit-identical to recompute** (levels are canonical, so
    /// this is exact, not approximate).
    ///
    /// Every node whose level changed (including the deleted nodes) is
    /// logged in `ds` with its pre-pass level. Levels only ever increase;
    /// a node whose level would reach `n_nodes` is unreachable and goes to
    /// [`UNREACHED`] directly. On success the number of queue pops the
    /// repair consumed is returned, so a caller running several passes per
    /// event can deduct them from one shared budget.
    ///
    /// # Errors
    /// Returns [`DeltaBudgetExceeded`] when more than `budget` queue pops
    /// were needed — the levels array is then partially repaired and must
    /// be rebuilt from scratch (the log is meaningless in that case).
    ///
    /// The root must never be deleted (rebuild instead); `member` must
    /// already reflect the post-deletion membership.
    ///
    /// Generic over [`LevelStore`], so the compact [`LevelVec`] the
    /// engine stores and the plain `u32` arrays the differential oracle
    /// keeps run the exact same monomorphised pass.
    pub fn levels_delete<L: LevelStore + ?Sized, M: Fn(usize) -> bool>(
        &self,
        levels: &mut L,
        ds: &mut DeltaScratch,
        deleted: &[u32],
        member: M,
        backward: bool,
        budget: usize,
    ) -> Result<usize, DeltaBudgetExceeded> {
        if self.pow2 {
            self.levels_delete_impl::<true, L, M>(levels, ds, deleted, member, backward, budget)
        } else {
            self.levels_delete_impl::<false, L, M>(levels, ds, deleted, member, backward, budget)
        }
    }

    fn levels_delete_impl<const POW2: bool, L: LevelStore + ?Sized, M: Fn(usize) -> bool>(
        &self,
        levels: &mut L,
        ds: &mut DeltaScratch,
        deleted: &[u32],
        member: M,
        backward: bool,
        budget: usize,
    ) -> Result<usize, DeltaBudgetExceeded> {
        let d = self.d;
        ds.begin(self.n_nodes, deleted.len() * d + 1);
        // Out-edges of the structure (the direction levels grow along) and
        // in-edges (the direction support is checked along).
        let out = |v: usize, a: usize| self.edge::<POW2>(v, a, backward);
        let inn = |v: usize, a: usize| self.edge::<POW2>(v, a, !backward);
        // Seed: drop the deleted nodes and stage their dependents.
        for &x in deleted {
            let xi = x as usize;
            debug_assert!(!member(xi), "deleted node still tests as a member");
            let lx = levels.level(xi);
            if lx == UNREACHED {
                continue;
            }
            ds.record(x, lx);
            levels.set_level(xi, UNREACHED);
        }
        for i in 0..ds.changed.len() {
            let (x, lx) = (ds.changed[i] as usize, ds.old_levels[i]);
            for a in 0..d {
                let s = out(x, a);
                if member(s) && levels.level(s) == lx + 1 && ds.pending[s] != lx + 1 {
                    ds.pending[s] = lx + 1;
                    ds.seeds.push((u64::from(lx + 1) << 32) | s as u64);
                }
            }
        }
        if ds.seeds.is_empty() {
            return Ok(0);
        }
        ds.seeds.sort_unstable();
        // Drain level by level: all pushes land exactly one level up, so a
        // current/next ping-pong with seed merging replaces a heap.
        let mut si = 0usize;
        let mut l = (ds.seeds[0] >> 32) as usize;
        let mut pops = 0usize;
        loop {
            while si < ds.seeds.len() && (ds.seeds[si] >> 32) as usize == l {
                ds.cur.push((ds.seeds[si] & u64::from(u32::MAX)) as u32);
                si += 1;
            }
            if ds.cur.is_empty() {
                if si >= ds.seeds.len() {
                    break;
                }
                l = (ds.seeds[si] >> 32) as usize;
                continue;
            }
            let mut head = 0usize;
            while head < ds.cur.len() {
                let u = ds.cur[head];
                head += 1;
                let ui = u as usize;
                if ds.pending[ui] == l as u32 {
                    ds.pending[ui] = UNREACHED;
                }
                if levels.level(ui) != l as u32 {
                    continue; // stale entry
                }
                pops += 1;
                if pops > budget {
                    ds.abort();
                    return Err(DeltaBudgetExceeded { pops });
                }
                // A surviving predecessor one level up keeps u settled:
                // every level below l is final, so the check is exact.
                let supported = (0..d).any(|a| {
                    let p = inn(ui, a);
                    member(p) && levels.level(p) == (l - 1) as u32
                });
                if supported {
                    continue;
                }
                ds.record(u, l as u32);
                for a in 0..d {
                    let s = out(ui, a);
                    if member(s)
                        && levels.level(s) == (l + 1) as u32
                        && ds.pending[s] != (l + 1) as u32
                    {
                        ds.pending[s] = (l + 1) as u32;
                        ds.nxt.push(s as u32);
                    }
                }
                if l + 1 >= self.n_nodes {
                    levels.set_level(ui, UNREACHED);
                } else {
                    levels.set_level(ui, (l + 1) as u32);
                    if ds.pending[ui] != (l + 1) as u32 {
                        ds.pending[ui] = (l + 1) as u32;
                        ds.nxt.push(u);
                    }
                }
            }
            ds.cur.clear();
            std::mem::swap(&mut ds.cur, &mut ds.nxt);
            l += 1;
            if ds.cur.is_empty() && si >= ds.seeds.len() {
                break;
            }
        }
        Ok(pops)
    }

    /// Batch **node-insertion** repair of a BFS level array — the delta
    /// pass behind [`crate::ffc::RingMaintainer::clear_fault`], and the
    /// exact mirror of [`BitReach::levels_delete`]: the caller has just
    /// added `inserted` to the membership (each must already test `member`
    /// and carry [`UNREACHED`]), and this pass computes their levels and
    /// relaxes every node whose distance shrank — unit-weight Dijkstra out
    /// of the healed frontier, **bit-identical to recompute**. Levels only
    /// ever decrease; changes are logged like the delete pass, and the
    /// consumed queue pops are returned on success.
    ///
    /// # Errors
    /// Returns [`DeltaBudgetExceeded`] when more than `budget` queue pops
    /// were needed (same contract as [`BitReach::levels_delete`]).
    pub fn levels_insert<L: LevelStore + ?Sized, M: Fn(usize) -> bool>(
        &self,
        levels: &mut L,
        ds: &mut DeltaScratch,
        inserted: &[u32],
        member: M,
        backward: bool,
        budget: usize,
    ) -> Result<usize, DeltaBudgetExceeded> {
        if self.pow2 {
            self.levels_insert_impl::<true, L, M>(levels, ds, inserted, member, backward, budget)
        } else {
            self.levels_insert_impl::<false, L, M>(levels, ds, inserted, member, backward, budget)
        }
    }

    fn levels_insert_impl<const POW2: bool, L: LevelStore + ?Sized, M: Fn(usize) -> bool>(
        &self,
        levels: &mut L,
        ds: &mut DeltaScratch,
        inserted: &[u32],
        member: M,
        backward: bool,
        budget: usize,
    ) -> Result<usize, DeltaBudgetExceeded> {
        let d = self.d;
        ds.begin(self.n_nodes, inserted.len() + 1);
        let out = |v: usize, a: usize| self.edge::<POW2>(v, a, backward);
        let inn = |v: usize, a: usize| self.edge::<POW2>(v, a, !backward);
        // Seed: each revived node joins one level below its best live
        // predecessor (if it has one yet — relaxation finds the rest).
        for &x in inserted {
            let xi = x as usize;
            debug_assert!(member(xi), "inserted node does not test as a member");
            debug_assert_eq!(
                levels.level(xi),
                UNREACHED,
                "inserted node already has a level"
            );
            let mut best = UNREACHED;
            for a in 0..d {
                let p = inn(xi, a);
                if member(p) && levels.level(p) < best {
                    best = levels.level(p);
                }
            }
            if best != UNREACHED {
                ds.record(x, UNREACHED);
                levels.set_level(xi, best + 1);
                ds.pending[xi] = best + 1;
                ds.seeds.push((u64::from(best + 1) << 32) | u64::from(x));
            }
        }
        if ds.seeds.is_empty() {
            return Ok(0);
        }
        ds.seeds.sort_unstable();
        let mut si = 0usize;
        let mut l = (ds.seeds[0] >> 32) as usize;
        let mut pops = 0usize;
        loop {
            while si < ds.seeds.len() && (ds.seeds[si] >> 32) as usize == l {
                ds.cur.push((ds.seeds[si] & u64::from(u32::MAX)) as u32);
                si += 1;
            }
            if ds.cur.is_empty() {
                if si >= ds.seeds.len() {
                    break;
                }
                l = (ds.seeds[si] >> 32) as usize;
                continue;
            }
            let mut head = 0usize;
            while head < ds.cur.len() {
                let u = ds.cur[head];
                head += 1;
                let ui = u as usize;
                if ds.pending[ui] == l as u32 {
                    ds.pending[ui] = UNREACHED;
                }
                if levels.level(ui) != l as u32 {
                    continue; // stale entry (relaxed below its queued level)
                }
                pops += 1;
                if pops > budget {
                    ds.abort();
                    return Err(DeltaBudgetExceeded { pops });
                }
                for a in 0..d {
                    let s = out(ui, a);
                    if member(s) && levels.level(s) > (l + 1) as u32 {
                        ds.record(s as u32, levels.level(s));
                        levels.set_level(s, (l + 1) as u32);
                        if ds.pending[s] != (l + 1) as u32 {
                            ds.pending[s] = (l + 1) as u32;
                            ds.nxt.push(s as u32);
                        }
                    }
                }
            }
            ds.cur.clear();
            std::mem::swap(&mut ds.cur, &mut ds.nxt);
            l += 1;
            if ds.cur.is_empty() && si >= ds.seeds.len() {
                break;
            }
        }
        Ok(pops)
    }

    /// One implicit edge of the structure: `forward == false` follows a
    /// graph successor, `true` a graph predecessor. `POW2` compiles the
    /// arithmetic to shifts and masks.
    #[inline]
    fn edge<const POW2: bool>(&self, v: usize, a: usize, backward: bool) -> usize {
        if backward {
            let base = if POW2 { v >> self.d_log } else { v / self.d };
            base + if POW2 {
                a << self.suffix_log
            } else {
                a * self.suffix
            }
        } else {
            let base = if POW2 {
                (v & (self.suffix - 1)) << self.d_log
            } else {
                (v % self.suffix) * self.d
            };
            base + a
        }
    }
}

/// The global next-level length every shard reads after the per-level
/// barrier: the sum of this parity's per-shard dense counts, or the
/// sparse frontier length shard 0 published for this parity.
fn level_len(cells: &ParCells, shards: usize, parity: usize, cur_dense: bool) -> usize {
    if cur_dense {
        (0..shards)
            .map(|k| cells.counts.load(parity * shards + k) as usize)
            .sum()
    } else {
        cells.sparse_len[parity].load(Ordering::Relaxed)
    }
}

/// Appends a sparse level to the sink.
fn emit_queue(sink: &mut LevelSink<'_>, queue: &[u32]) {
    sink.offsets.push(sink.nodes.len() as u32);
    sink.nodes.extend_from_slice(queue);
}

/// Appends a dense level held in atomic cells to the sink (set bits in
/// increasing id order, exactly like [`emit_bits_sum`]).
fn emit_cells(sink: &mut LevelSink<'_>, cells: &AtomicCells, words: usize) {
    sink.offsets.push(sink.nodes.len() as u32);
    for j in 0..words {
        let mut w = cells.load(j);
        while w != 0 {
            sink.nodes.push((j * 64) as u32 + w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// Appends a dense level to the sink with a hierarchical summary:
/// skip-scans the occupied words only, set bits in increasing id order.
/// Identical output to a full-word scan (the summary never misses an
/// occupied word; false positives just visit a zero word).
fn emit_bits_sum(sink: &mut LevelSink<'_>, bits: &[u64], sum: &[u64]) {
    sink.offsets.push(sink.nodes.len() as u32);
    extract_bits_skip(bits, sum, sink.nodes);
}

/// Number of summary words covering `words` bitmap words (one summary
/// *bit* per word, one summary *word* per 64-word / 4096-node block).
#[inline]
#[must_use]
pub fn sum_words(words: usize) -> usize {
    words.div_ceil(64)
}

/// Marks the summary bits covering bitmap words `base..base + len`.
#[inline]
fn mark_sum_range(sum: &mut [u64], base: usize, len: usize) {
    let (first, last) = (base >> 6, (base + len - 1) >> 6);
    if first == last {
        let lo = base & 63;
        let width = len as u64;
        let mask = if width == 64 {
            u64::MAX
        } else {
            ((1u64 << width) - 1) << lo
        };
        sum[first] |= mask;
    } else {
        sum[first] |= u64::MAX << (base & 63);
        for w in &mut sum[first + 1..last] {
            *w = u64::MAX;
        }
        let hi = (base + len - 1) & 63;
        sum[last] |= if hi == 63 {
            u64::MAX
        } else {
            (1u64 << (hi + 1)) - 1
        };
    }
}

/// Rebuilds the hierarchical summary of `bits` from scratch: summary bit
/// `j` is set iff `bits[j] != 0`. The in-kernel maintenance keeps
/// summaries incrementally; this is for bitmaps mutated outside the
/// kernels (and the skip-scan micro-bench).
pub fn summarize_bits(bits: &[u64], sum: &mut [u64]) {
    let sw = sum_words(bits.len());
    sum[..sw].fill(0);
    for (j, &w) in bits.iter().enumerate() {
        sum[j >> 6] |= u64::from(w != 0) << (j & 63);
    }
}

/// Appends the set bits of `bits` to `out` in increasing id order — the
/// full-scan baseline the skip-scan micro-bench races against.
pub fn extract_bits(bits: &[u64], out: &mut Vec<u32>) {
    for (j, &word) in bits.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            out.push((j * 64) as u32 + w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// [`extract_bits`] over the summary: visits only words whose summary bit
/// is set, in increasing order, so the output is identical whenever the
/// summary covers every occupied word (`occupied ⊆ marked`).
pub fn extract_bits_skip(bits: &[u64], sum: &[u64], out: &mut Vec<u32>) {
    for (sj, &sword) in sum.iter().enumerate() {
        let mut s = sword;
        while s != 0 {
            let j = sj * 64 + s.trailing_zeros() as usize;
            s &= s - 1;
            if j >= bits.len() {
                break;
            }
            let mut w = bits[j];
            while w != 0 {
                out.push((j * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn spread2_matches_bit_by_bit_definition() {
        let mut rng = StdRng::seed_from_u64(1);
        for case in 0..2000u64 {
            let x = if case < 64 {
                1u64 << (case % 32)
            } else {
                rng.next_u64() & u64::from(u32::MAX)
            };
            let got = spread2(x);
            let mut want = 0u64;
            for i in 0..32 {
                if x & (1 << i) != 0 {
                    want |= 0b11 << (2 * i);
                }
            }
            assert_eq!(got, want, "x={x:#x}");
        }
    }

    #[test]
    fn squash2_matches_bit_by_bit_definition() {
        let mut rng = StdRng::seed_from_u64(2);
        for case in 0..2000u64 {
            let x = if case < 64 {
                1u64 << case
            } else {
                rng.next_u64()
            };
            let got = squash2(x);
            let mut want = 0u64;
            for i in 0..32 {
                if x & (0b11 << (2 * i)) != 0 {
                    want |= 1 << i;
                }
            }
            assert_eq!(got, want, "x={x:#x}");
        }
    }

    #[test]
    fn squash2_inverts_spread2() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let x = rng.next_u64() & u64::from(u32::MAX);
            assert_eq!(squash2(spread2(x)), x);
        }
    }

    /// Scalar oracle: plain queue BFS over the shift arithmetic with a
    /// per-node visited array, returning (levels, reached, depth).
    fn oracle_bfs(
        d: usize,
        n_nodes: usize,
        dead: &[bool],
        root: usize,
        backward: bool,
        restrict: Option<&[bool]>,
    ) -> (Vec<usize>, usize, usize) {
        let suffix = n_nodes / d;
        let inside = |u: usize| -> bool { !dead[u] && restrict.is_none_or(|r| r[u]) };
        let mut level = vec![usize::MAX; n_nodes];
        level[root] = 0;
        let mut frontier = vec![root];
        let mut reached = 1usize;
        let mut depth = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for a in 0..d {
                    let u = if backward {
                        v / d + a * suffix
                    } else {
                        (v % suffix) * d + a
                    };
                    if level[u] == usize::MAX && inside(u) {
                        level[u] = depth + 1;
                        next.push(u);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            reached += next.len();
            depth += 1;
            frontier = next;
        }
        (level, reached, depth)
    }

    /// Random dead mask that never kills the chosen root.
    fn random_dead(n_nodes: usize, deaths: usize, root: usize, rng: &mut StdRng) -> Vec<bool> {
        let mut dead = vec![false; n_nodes];
        for _ in 0..deaths {
            let v = rng.gen_range(0..n_nodes);
            if v != root {
                dead[v] = true;
            }
        }
        dead
    }

    /// All three policies must agree with the scalar oracle on every pass
    /// (forward counts/depths, component sizes, broadcast levels).
    #[test]
    fn passes_match_scalar_oracle_under_every_policy() {
        let shapes = [
            (2usize, 1 << 9),
            (2, 1 << 7),
            (4, 1 << 10),
            (3, 243),
            (8, 512),
        ];
        let mut rng = StdRng::seed_from_u64(2026);
        for &(d, n_nodes) in &shapes {
            for trial in 0..24 {
                let root = 1usize;
                let deaths = [0, 1, 3, n_nodes / 20, n_nodes / 4][trial % 5];
                let dead = random_dead(n_nodes, deaths, root, &mut rng);
                let removed = dead.iter().filter(|&&x| x).count();
                let (fl, fwd_reached, fwd_depth) = oracle_bfs(d, n_nodes, &dead, root, false, None);
                let (bl, _, _) = oracle_bfs(d, n_nodes, &dead, root, true, None);
                let bstar: Vec<bool> = (0..n_nodes)
                    .map(|v| fl[v] != usize::MAX && bl[v] != usize::MAX)
                    .collect();
                let component = bstar.iter().filter(|&&x| x).count();
                let (vl, _, ecc) = oracle_bfs(d, n_nodes, &dead, root, false, Some(&bstar));
                for policy in [DensePolicy::Auto, DensePolicy::Never, DensePolicy::Always] {
                    let reach = BitReach::with_policy(d, n_nodes, policy);
                    let mut s = BitScratch::new();
                    reach.prepare(&mut s);
                    for (v, &x) in dead.iter().enumerate() {
                        if x {
                            reach.kill(&mut s, v);
                        }
                    }
                    let (count, depth) = reach.forward(&mut s, root);
                    assert_eq!(
                        (count, depth),
                        (fwd_reached, fwd_depth),
                        "forward d={d} n={n_nodes} deaths={deaths} {policy:?}"
                    );
                    reach.backward(&mut s, root);
                    assert_eq!(
                        reach.component_size(&s, removed),
                        component,
                        "component d={d} n={n_nodes} deaths={deaths} {policy:?}"
                    );
                    for (v, &want) in bstar.iter().enumerate() {
                        assert_eq!(reach.in_bstar(&s, v), want, "v={v} {policy:?}");
                    }
                    let mut nodes = Vec::new();
                    let mut offsets = Vec::new();
                    let (breached, bdepth) =
                        reach.broadcast_levels(&mut s, root, &mut nodes, &mut offsets);
                    assert_eq!(bdepth, ecc, "broadcast depth {policy:?}");
                    assert_eq!(breached, component, "broadcast covers B* {policy:?}");
                    assert_eq!(nodes.len(), component);
                    assert_eq!(offsets.len(), bdepth + 2);
                    for l in 0..=bdepth {
                        let mut lvl: Vec<u32> =
                            nodes[offsets[l] as usize..offsets[l + 1] as usize].to_vec();
                        lvl.sort_unstable();
                        let mut want: Vec<u32> = (0..n_nodes)
                            .filter(|&v| bstar[v] && vl[v] == l)
                            .map(|v| v as u32)
                            .collect();
                        want.sort_unstable();
                        assert_eq!(lvl, want, "level {l} {policy:?}");
                    }
                    // And the stats-only depth variant agrees.
                    assert_eq!(reach.broadcast_depth(&mut s, root), ecc, "{policy:?}");
                }
            }
        }
    }

    /// The sharded passes must reproduce the serial engine byte for byte
    /// at every shard count: forward counts/depths, the visited sets (via
    /// `in_bstar` over every node), component sizes, and the broadcast's
    /// emitted nodes/offsets **including their order** — on dense-capable
    /// shapes (both regimes) and on shapes that delegate to the serial
    /// pass.
    #[test]
    fn parallel_passes_match_serial_at_every_shard_count() {
        let shapes = [(2usize, 1 << 10), (4, 1 << 10), (2, 1 << 7), (3, 243)];
        let mut rng = StdRng::seed_from_u64(0x9a11);
        for &(d, n_nodes) in &shapes {
            let reach = BitReach::new(d, n_nodes);
            for trial in 0..10 {
                let root = 1usize;
                let deaths = [0, 1, 3, n_nodes / 16, n_nodes / 3][trial % 5];
                let dead = random_dead(n_nodes, deaths, root, &mut rng);
                let removed = dead.iter().filter(|&&x| x).count();
                // Serial oracle run.
                let mut ser = BitScratch::new();
                reach.prepare(&mut ser);
                for (v, &x) in dead.iter().enumerate() {
                    if x {
                        reach.kill(&mut ser, v);
                    }
                }
                let want_fwd = reach.forward(&mut ser, root);
                reach.backward(&mut ser, root);
                let want_component = reach.component_size(&ser, removed);
                let mut want_nodes = Vec::new();
                let mut want_offsets = Vec::new();
                let want_bcast =
                    reach.broadcast_levels(&mut ser, root, &mut want_nodes, &mut want_offsets);
                for shards in [1usize, 2, 3, 4, 5, 7] {
                    let mut s = BitScratch::new();
                    let mut par = ParBitScratch::new();
                    reach.prepare(&mut s);
                    for (v, &x) in dead.iter().enumerate() {
                        if x {
                            reach.kill(&mut s, v);
                        }
                    }
                    let got_fwd = reach.forward_par(&mut s, &mut par, root, shards);
                    assert_eq!(got_fwd, want_fwd, "forward d={d} n={n_nodes} x{shards}");
                    reach.backward_par(&mut s, &mut par, root, shards);
                    assert_eq!(
                        reach.component_size(&s, removed),
                        want_component,
                        "component d={d} n={n_nodes} x{shards}"
                    );
                    for v in 0..n_nodes {
                        assert_eq!(
                            reach.in_bstar(&s, v),
                            reach.in_bstar(&ser, v),
                            "in_bstar v={v} x{shards}"
                        );
                    }
                    let mut nodes = Vec::new();
                    let mut offsets = Vec::new();
                    let got_bcast = reach.broadcast_levels_par(
                        &mut s,
                        &mut par,
                        root,
                        &mut nodes,
                        &mut offsets,
                        shards,
                    );
                    assert_eq!(
                        got_bcast, want_bcast,
                        "broadcast d={d} n={n_nodes} x{shards}"
                    );
                    assert_eq!(
                        nodes, want_nodes,
                        "emission bytes d={d} n={n_nodes} x{shards}"
                    );
                    assert_eq!(offsets, want_offsets, "offsets d={d} n={n_nodes} x{shards}");
                }
            }
        }
    }

    /// Oversized node spaces must be rejected with the typed error, not
    /// silently truncated to u32 ids in release builds.
    #[test]
    fn oversized_spaces_are_rejected_with_a_typed_error() {
        let too_big = (u64::from(u32::MAX) + 1) as usize;
        let err = BitReach::try_new(2, too_big).expect_err("2^32 nodes must not fit");
        assert_eq!(err.n_nodes, Some(too_big as u64));
        assert!(err.to_string().contains("u32"));
        // The boundary itself is fine (ids 0..=u32::MAX - 1).
        assert!(BitReach::try_new(2, 1 << 20).is_ok());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_space_panics_in_the_panicking_constructor() {
        let _ = BitReach::new(2, (u64::from(u32::MAX) + 1) as usize);
    }

    #[test]
    fn scratch_reuse_across_shapes_never_leaks_state() {
        let mut s = BitScratch::new();
        for &(d, n_nodes) in &[(2usize, 1 << 10), (4, 256), (2, 64), (3, 81), (2, 1 << 10)] {
            let reach = BitReach::new(d, n_nodes);
            reach.prepare(&mut s);
            reach.kill(&mut s, 0); // kill the self-loop word 0^n
            let (count, _) = reach.forward(&mut s, 1);
            reach.backward(&mut s, 1);
            assert_eq!(count, n_nodes - 1, "d={d} n={n_nodes}");
            assert_eq!(reach.component_size(&s, 1), n_nodes - 1);
        }
    }

    #[test]
    fn dense_capability_matches_shape() {
        assert!(BitReach::new(2, 1 << 10).dense_capable());
        assert!(BitReach::new(4, 1 << 10).dense_capable());
        assert!(!BitReach::new(3, 243).dense_capable()); // not pow2
        assert!(!BitReach::new(2, 32).dense_capable()); // suffix below a word
    }

    /// The level-emitting forward/backward passes must produce the scalar
    /// oracle's levels, and the sharded variants must be byte-identical to
    /// the serial ones at every shard count (including the backward
    /// emission order, which no earlier pass covered).
    #[test]
    fn level_emitting_passes_match_oracle_and_shard_invariantly() {
        let shapes = [(2usize, 1 << 10), (4, 1 << 10), (2, 1 << 7), (3, 243)];
        let mut rng = StdRng::seed_from_u64(0x1e7e15);
        for &(d, n_nodes) in &shapes {
            let reach = BitReach::new(d, n_nodes);
            for trial in 0..6 {
                let root = 1usize;
                let deaths = [0, 1, n_nodes / 16, n_nodes / 3][trial % 4];
                let dead = random_dead(n_nodes, deaths, root, &mut rng);
                let scatter = |nodes: &[u32], offsets: &[u32]| -> Vec<usize> {
                    let mut lv = vec![usize::MAX; n_nodes];
                    for l in 0..offsets.len() - 1 {
                        for &v in &nodes[offsets[l] as usize..offsets[l + 1] as usize] {
                            lv[v as usize] = l;
                        }
                    }
                    lv
                };
                for backward in [false, true] {
                    let (want_lv, want_reached, want_depth) =
                        oracle_bfs(d, n_nodes, &dead, root, backward, None);
                    let mut s = BitScratch::new();
                    reach.prepare(&mut s);
                    for (v, &x) in dead.iter().enumerate() {
                        if x {
                            reach.kill(&mut s, v);
                        }
                    }
                    let mut nodes = Vec::new();
                    let mut offsets = Vec::new();
                    let got = if backward {
                        reach.backward_levels(&mut s, root, &mut nodes, &mut offsets)
                    } else {
                        reach.forward_levels(&mut s, root, &mut nodes, &mut offsets)
                    };
                    assert_eq!(got, (want_reached, want_depth), "d={d} bwd={backward}");
                    assert_eq!(scatter(&nodes, &offsets), want_lv, "d={d} bwd={backward}");
                    for shards in [2usize, 3, 4, 5, 7] {
                        let mut sp = BitScratch::new();
                        let mut par = ParBitScratch::new();
                        reach.prepare(&mut sp);
                        for (v, &x) in dead.iter().enumerate() {
                            if x {
                                reach.kill(&mut sp, v);
                            }
                        }
                        let mut pn = Vec::new();
                        let mut po = Vec::new();
                        let gp = if backward {
                            reach.backward_levels_par(
                                &mut sp, &mut par, root, &mut pn, &mut po, shards,
                            )
                        } else {
                            reach.forward_levels_par(
                                &mut sp, &mut par, root, &mut pn, &mut po, shards,
                            )
                        };
                        assert_eq!(gp, got, "x{shards} bwd={backward}");
                        assert_eq!(pn, nodes, "emission bytes x{shards} bwd={backward}");
                        assert_eq!(po, offsets, "offsets x{shards} bwd={backward}");
                    }
                }
            }
        }
    }

    /// Scalar level oracle as a u32 array with [`UNREACHED`] holes.
    fn oracle_levels(
        d: usize,
        n_nodes: usize,
        member: &[bool],
        root: usize,
        backward: bool,
    ) -> Vec<u32> {
        let dead: Vec<bool> = member.iter().map(|&m| !m).collect();
        let (lv, _, _) = oracle_bfs(d, n_nodes, &dead, root, backward, None);
        lv.iter()
            .map(|&l| if l == usize::MAX { UNREACHED } else { l as u32 })
            .collect()
    }

    /// The delta passes must be **bit-identical to recompute**: after any
    /// batch of deletions or insertions, the repaired level array equals a
    /// from-scratch BFS over the new membership — in both edge directions,
    /// across several mutation rounds on the same scratch, and the changed
    /// log must name exactly the nodes whose level differs (with their
    /// true pre-pass levels).
    #[test]
    fn delta_passes_are_bit_identical_to_recompute() {
        let shapes = [(2usize, 1 << 9), (3, 243), (4, 256), (2, 64)];
        let mut rng = StdRng::seed_from_u64(0xde17a);
        for &(d, n_nodes) in &shapes {
            let reach = BitReach::new(d, n_nodes);
            for backward in [false, true] {
                let root = 1usize;
                let mut member = vec![true; n_nodes];
                let mut levels = oracle_levels(d, n_nodes, &member, root, backward);
                let mut ds = DeltaScratch::new();
                let mut removed: Vec<u32> = Vec::new();
                for round in 0..30 {
                    let before = levels.clone();
                    let delete = round % 2 == 0 || removed.is_empty();
                    let batch: Vec<u32> = if delete {
                        let k = 1 + rng.gen_range(0..4);
                        let mut b = Vec::new();
                        for _ in 0..k {
                            let v = rng.gen_range(0..n_nodes);
                            if v != root && member[v] && !b.contains(&(v as u32)) {
                                b.push(v as u32);
                            }
                        }
                        b
                    } else {
                        let k = 1 + rng.gen_range(0..removed.len());
                        removed.drain(..k).collect()
                    };
                    if delete {
                        for &v in &batch {
                            member[v as usize] = false;
                            removed.push(v);
                        }
                        reach
                            .levels_delete(
                                &mut levels,
                                &mut ds,
                                &batch,
                                |u| member[u],
                                backward,
                                usize::MAX,
                            )
                            .expect("unbounded budget");
                    } else {
                        for &v in &batch {
                            member[v as usize] = true;
                        }
                        reach
                            .levels_insert(
                                &mut levels,
                                &mut ds,
                                &batch,
                                |u| member[u],
                                backward,
                                usize::MAX,
                            )
                            .expect("unbounded budget");
                    }
                    let want = oracle_levels(d, n_nodes, &member, root, backward);
                    assert_eq!(
                        levels, want,
                        "d={d} n={n_nodes} bwd={backward} round={round} delete={delete}"
                    );
                    // The changed log is exact: every difference against the
                    // pre-pass array is logged once with its true old level.
                    let mut diff: Vec<(u32, u32)> = before
                        .iter()
                        .enumerate()
                        .filter(|&(v, &l)| l != levels[v])
                        .map(|(v, &l)| (v as u32, l))
                        .collect();
                    let mut logged: Vec<(u32, u32)> = ds.changed().collect();
                    diff.sort_unstable();
                    logged.sort_unstable();
                    assert_eq!(logged, diff, "changed log round={round}");
                }
            }
        }
    }

    /// A pathological deletion (large detached cycle) must trip the work
    /// budget instead of grinding level-by-level to the cap, and an
    /// unbounded retry from scratch still converges.
    #[test]
    fn delta_delete_respects_the_work_budget() {
        let (d, n_nodes) = (2usize, 1 << 9);
        let reach = BitReach::new(d, n_nodes);
        let root = 1usize;
        let mut member = vec![true; n_nodes];
        let mut levels = oracle_levels(d, n_nodes, &member, root, backward_false());
        let mut ds = DeltaScratch::new();
        // Kill a thick band of nodes: plenty of cascading work.
        let batch: Vec<u32> = (64..256u32).collect();
        for &v in &batch {
            member[v as usize] = false;
        }
        let err = reach
            .levels_delete(&mut levels, &mut ds, &batch, |u| member[u], false, 3)
            .expect_err("three pops cannot absorb a 192-node deletion");
        assert!(err.pops > 3);
        // The array is now partial; a recompute (what the maintainer's
        // rebuild fallback does) restores the canonical levels.
        let want = oracle_levels(d, n_nodes, &member, root, false);
        levels.copy_from_slice(&want);
        assert_eq!(levels, want);
    }

    fn backward_false() -> bool {
        false
    }

    /// A delete cascade that climbs a node through the whole u8 escape
    /// band (levels 254..n_nodes) must behave bit-for-bit the same on the
    /// compact [`LevelVec`] as on the `u32` oracle array — both in the
    /// partial state of a budget abort (escaped entries live) and in the
    /// settled state (side table empty again).
    #[test]
    fn compact_levels_survive_deep_cascades_through_the_escape_band() {
        let (d, n_nodes) = (2usize, 1 << 10);
        let reach = BitReach::new(d, n_nodes);
        let root = 1usize;
        let mut member = vec![true; n_nodes];
        let base = oracle_levels(d, n_nodes, &member, root, false);
        let mut u32_levels = base.clone();
        let mut lv = LevelVec::new();
        lv.grow(n_nodes);
        for (v, &l) in base.iter().enumerate() {
            lv.set(v, l);
        }
        // Delete both predecessors of node 700 (350 and 350 + 512): its
        // support vanishes and the Even–Shiloach cascade climbs it one
        // level at a time toward n_nodes = 1024 — straight through the
        // escape band — before settling at UNREACHED.
        let batch = [350u32, 862];
        for &v in &batch {
            member[v as usize] = false;
        }
        let mut ds = DeltaScratch::new();
        // A budget-bounded run aborts mid-climb: the deterministic pass
        // leaves both stores in the same partial state, pinning escaped
        // values (> 253) bit-for-bit.
        let mut u32_part = u32_levels.clone();
        let mut lv_part = lv.clone();
        let e1 = reach
            .levels_delete(&mut u32_part, &mut ds, &batch, |u| member[u], false, 500)
            .expect_err("a 1000-step climb cannot fit 500 pops");
        let e2 = reach
            .levels_delete(&mut lv_part, &mut ds, &batch, |u| member[u], false, 500)
            .expect_err("a 1000-step climb cannot fit 500 pops");
        assert_eq!(e1.pops, e2.pops, "abort point must match");
        for (v, &u32_v) in u32_part.iter().enumerate() {
            assert_eq!(u32_v, lv_part.get(v), "partial state node {v}");
        }
        assert!(
            lv_part.overflow_len() > 0,
            "the abort landed inside the escape band"
        );
        // The unbounded run settles both stores at the recompute oracle.
        reach
            .levels_delete(
                &mut u32_levels,
                &mut ds,
                &batch,
                |u| member[u],
                false,
                usize::MAX,
            )
            .expect("unbounded budget");
        reach
            .levels_delete(&mut lv, &mut ds, &batch, |u| member[u], false, usize::MAX)
            .expect("unbounded budget");
        let want = oracle_levels(d, n_nodes, &member, root, false);
        assert_eq!(u32_levels, want);
        for (v, &want_v) in want.iter().enumerate() {
            assert_eq!(lv.get(v), want_v, "settled state node {v}");
        }
        assert_eq!(lv.overflow_len(), 0, "settled levels never stay escaped");
    }

    /// The two-level skip-scan must extract exactly the full scan's output
    /// for any bitmap — including non-multiple-of-64 word counts, empty
    /// maps, and over-approximate summaries (extra marked blocks are
    /// harmless; `occupied ⊆ marked` is the only invariant).
    #[test]
    fn summary_skip_scan_matches_full_extraction() {
        let mut rng = StdRng::seed_from_u64(0x5ca9);
        for words in [1usize, 7, 63, 64, 65, 200] {
            for density in [0usize, 1, 8, words * 8] {
                let mut bits = vec![0u64; words];
                for _ in 0..density {
                    let v = rng.gen_range(0..words * 64);
                    bits[v / 64] |= 1u64 << (v % 64);
                }
                let mut sum = vec![0u64; sum_words(words)];
                summarize_bits(&bits, &mut sum);
                // The rebuilt summary marks exactly the occupied words.
                for (j, &w) in bits.iter().enumerate() {
                    assert_eq!(sum[j >> 6] >> (j & 63) & 1 == 1, w != 0, "word {j}");
                }
                let (mut fast, mut slow) = (Vec::new(), Vec::new());
                extract_bits_skip(&bits, &sum, &mut fast);
                extract_bits(&bits, &mut slow);
                assert_eq!(fast, slow, "words={words} density={density}");
                // An over-approximate summary (every block marked) only
                // adds zero-word probes, never changes the output.
                let all = vec![u64::MAX; sum_words(words)];
                fast.clear();
                extract_bits_skip(&bits, &all, &mut fast);
                assert_eq!(fast, slow, "over-approximate words={words}");
            }
        }
    }

    /// `mark_sum_range` must cover exactly the requested word range for
    /// every alignment, including spans crossing summary-word boundaries.
    #[test]
    fn mark_sum_range_covers_exactly_the_requested_words() {
        for &(base, len) in &[
            (0usize, 1usize),
            (0, 64),
            (63, 1),
            (63, 2),
            (5, 200),
            (64, 64),
            (100, 1),
            (0, 193),
        ] {
            let total = (base + len).div_ceil(64) + 1;
            let mut sum = vec![0u64; total];
            mark_sum_range(&mut sum, base, len);
            for j in 0..total * 64 {
                let marked = sum[j >> 6] >> (j & 63) & 1 == 1;
                assert_eq!(
                    marked,
                    (base..base + len).contains(&j),
                    "base={base} len={len} word {j}"
                );
            }
        }
    }

    #[test]
    fn no_allocation_after_first_pass_in_both_regimes() {
        let reach = BitReach::new(2, 1 << 12);
        let mut s = BitScratch::new();
        let mut rng = StdRng::seed_from_u64(7);
        // Warm up one dense-regime and one sparse-regime pass.
        for deaths in [0, 1 << 10] {
            let dead = random_dead(1 << 12, deaths, 1, &mut rng);
            reach.prepare(&mut s);
            for (v, &x) in dead.iter().enumerate() {
                if x {
                    reach.kill(&mut s, v);
                }
            }
            let _ = reach.forward(&mut s, 1);
            reach.backward(&mut s, 1);
            let _ = reach.broadcast_depth(&mut s, 1);
        }
        let warm = s.allocated_bytes();
        for trial in 0..100 {
            let deaths = [0, 3, 1 << 6, 1 << 10][trial % 4];
            let dead = random_dead(1 << 12, deaths, 1, &mut rng);
            reach.prepare(&mut s);
            for (v, &x) in dead.iter().enumerate() {
                if x {
                    reach.kill(&mut s, v);
                }
            }
            let _ = reach.forward(&mut s, 1);
            reach.backward(&mut s, 1);
            let _ = reach.broadcast_depth(&mut s, 1);
            assert_eq!(s.allocated_bytes(), warm, "trial {trial}");
        }
    }

    /// Pins the fused single-pass dense kernel bit-for-bit against the
    /// retained two-phase scalar reference, forward and backward, on
    /// random frontiers at both sparse (~3%) and dense (~50%) fills —
    /// the populations the engine sees on either side of the
    /// density-switch thresholds. Shapes cover the d=2 specialisation's
    /// unrolled 4-word tile (suffix_words ≥ 4), its remainder loop
    /// (suffix_words ∈ {1, 2}), and the generic-d path (d = 4, 8).
    #[test]
    fn fused_kernel_matches_two_phase_scalar_bit_for_bit() {
        let shapes = [
            (2usize, 128usize), // suffix_words = 1: remainder loop only
            (2, 256),           // suffix_words = 2: remainder loop only
            (2, 1 << 11),       // suffix_words = 16: full 4-word tiles
            (2, 1 << 14),       // suffix_words = 128: many tiles
            (4, 1 << 10),       // generic-d fold of 16-bit chunks
            (8, 4096),          // generic-d fold of 8-bit chunks
        ];
        let mut rng = StdRng::seed_from_u64(0xF05E);
        for &(d, n_nodes) in &shapes {
            let reach = BitReach::new(d, n_nodes);
            assert!(reach.dense_capable(), "d={d} n={n_nodes}");
            let words = n_nodes / 64;
            let sw = words / d;
            let mut fold = vec![0u64; sw];
            for trial in 0..16 {
                let sparse = trial % 2 == 0;
                let word = |rng: &mut StdRng| {
                    if sparse {
                        // ~1/32 bit density: AND of five random words.
                        (0..5).fold(u64::MAX, |acc, _| acc & rng.next_u64())
                    } else {
                        rng.next_u64()
                    }
                };
                for backward in [false, true] {
                    let cur: Vec<u64> = (0..words).map(|_| word(&mut rng)).collect();
                    let vis0: Vec<u64> = (0..words).map(|_| word(&mut rng)).collect();
                    let (mut vis_a, mut vis_b) = (vis0.clone(), vis0);
                    let mut nxt_a = vec![u64::MAX; words]; // must be fully overwritten
                    let mut nxt_b = vec![0u64; words];
                    let na =
                        reach.kernel_step_scalar(backward, &cur, &mut vis_a, &mut nxt_a, &mut fold);
                    let nb = reach.kernel_step_fused(backward, &cur, &mut vis_b, &mut nxt_b);
                    let tag = format!("d={d} n={n_nodes} bwd={backward} sparse={sparse}");
                    assert_eq!(na, nb, "newly count diverges: {tag}");
                    assert_eq!(vis_a, vis_b, "visited words diverge: {tag}");
                    assert_eq!(nxt_a, nxt_b, "frontier words diverge: {tag}");
                }
            }
        }
    }

    /// The effective-shards heuristic: ≥ 1 always, bounded by the host's
    /// core count and by one shard per [`MIN_NODES_PER_SHARD`] nodes.
    #[test]
    fn effective_shards_clamps_to_cores_and_node_count() {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        // Degenerate requests fold to 1.
        assert_eq!(effective_shards(0, usize::MAX), 1);
        assert_eq!(effective_shards(1, usize::MAX), 1);
        // Small graphs fold any request to 1.
        assert_eq!(effective_shards(1 << 20, MIN_NODES_PER_SHARD - 1), 1);
        // The node-count bound scales one shard per MIN_NODES_PER_SHARD…
        assert_eq!(
            effective_shards(usize::MAX, 3 * MIN_NODES_PER_SHARD),
            cpus.min(3)
        );
        // …and the CPU bound caps an unbounded request.
        assert_eq!(effective_shards(usize::MAX, usize::MAX), cpus);
        // A modest request on a huge graph is honoured up to the cores.
        assert_eq!(effective_shards(2, usize::MAX), cpus.min(2));
    }
}
