//! Lifting de Bruijn ring embeddings to butterfly networks (Section 3.4).
//!
//! The butterfly F(d,n) contracts onto B(d,n) by merging the node classes
//! S_X = {(i, π^{-i}(X))}. The map Φ runs the contraction backwards: a
//! k-cycle of B(d,n) unrolls to an LCM(k,n)-cycle of F(d,n) (Lemma 3.9),
//! edge-disjoint cycles stay edge-disjoint, and a cycle that avoids a de
//! Bruijn edge avoids every butterfly edge lying over it (Lemma 3.10).
//! When gcd(d,n) = 1 a Hamiltonian cycle of B(d,n) lifts to a Hamiltonian
//! cycle of F(d,n), giving Propositions 3.5 and 3.6.

use dbg_algebra::num::lcm;
use dbg_graph::Butterfly;

use crate::bounds::psi;
use crate::disjoint::DisjointHamiltonianCycles;
use crate::edge_faults::EdgeFaultEmbedder;

/// Lifts a cycle of B(d,n) (given as node ids) to the cycle Φ(C) of F(d,n):
/// the i-th butterfly node is the level-(i mod n) member of the class of the
/// (i mod k)-th de Bruijn node. The result has length LCM(k, n).
#[must_use]
pub fn lift_cycle(butterfly: &Butterfly, cycle: &[usize]) -> Vec<usize> {
    let k = cycle.len() as u64;
    let n = u64::from(butterfly.n());
    let t = lcm(k, n);
    (0..t)
        .map(|i| {
            let v = cycle[(i % k) as usize] as u64;
            butterfly.debruijn_class_member(v, (i % n) as u32)
        })
        .collect()
}

/// Projects a butterfly edge back down to the de Bruijn edge it lies over:
/// the edge from `(r, col)` to `(r+1, col')` covers the de Bruijn edge
/// π^r(col) → π^{r+1}(col').
#[must_use]
pub fn project_edge(butterfly: &Butterfly, from: usize, to: usize) -> (usize, usize) {
    let space = butterfly.space();
    let (r_from, col_from) = butterfly.level_column(from);
    let (r_to, col_to) = butterfly.level_column(to);
    let u = space.rotate_left_by(col_from, r_from) as usize;
    let v = space.rotate_left_by(col_to, r_to) as usize;
    (u, v)
}

/// Ring embeddings in the d-ary butterfly F(d,n), obtained by lifting the
/// de Bruijn constructions. Requires gcd(d, n) = 1 for Hamiltonian results.
#[derive(Clone, Debug)]
pub struct ButterflyEmbedder {
    butterfly: Butterfly,
}

impl ButterflyEmbedder {
    /// Creates the embedder for F(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        ButterflyEmbedder {
            butterfly: Butterfly::new(d, n),
        }
    }

    /// The underlying butterfly graph.
    #[must_use]
    pub fn butterfly(&self) -> &Butterfly {
        &self.butterfly
    }

    /// Whether the Hamiltonian lifting applies (gcd(d, n) = 1).
    #[must_use]
    pub fn hamiltonian_lifting_applies(&self) -> bool {
        dbg_algebra::num::gcd(self.butterfly.d(), u64::from(self.butterfly.n())) == 1
    }

    /// ψ(d) pairwise edge-disjoint Hamiltonian cycles of F(d,n)
    /// (Proposition 3.6). Requires gcd(d,n) = 1 and n ≥ 2.
    ///
    /// # Panics
    /// Panics if gcd(d, n) ≠ 1.
    #[must_use]
    pub fn disjoint_hamiltonian_cycles(&self) -> Vec<Vec<usize>> {
        assert!(
            self.hamiltonian_lifting_applies(),
            "Proposition 3.6 requires gcd(d, n) = 1"
        );
        let d = self.butterfly.d();
        let n = self.butterfly.n();
        let family = DisjointHamiltonianCycles::construct(d, n);
        debug_assert_eq!(family.count() as u64, psi(d));
        family
            .cycles()
            .iter()
            .map(|c| lift_cycle(&self.butterfly, c))
            .collect()
    }

    /// A Hamiltonian cycle of F(d,n) avoiding the given faulty butterfly
    /// edges (Proposition 3.5): project the faults to B(d,n), embed there,
    /// and lift. Tolerates MAX{ψ(d)−1, φ(d)} faults; returns `None` if no
    /// cycle is found. Requires gcd(d,n) = 1.
    ///
    /// # Panics
    /// Panics if gcd(d, n) ≠ 1.
    #[must_use]
    pub fn hamiltonian_avoiding(&self, faulty_edges: &[(usize, usize)]) -> Option<Vec<usize>> {
        assert!(
            self.hamiltonian_lifting_applies(),
            "Proposition 3.5 requires gcd(d, n) = 1"
        );
        let projected: Vec<(usize, usize)> = faulty_edges
            .iter()
            .map(|&(a, b)| project_edge(&self.butterfly, a, b))
            .collect();
        let embedder = EdgeFaultEmbedder::new(self.butterfly.d(), self.butterfly.n());
        let base = embedder.hamiltonian_avoiding(&projected)?;
        Some(lift_cycle(&self.butterfly, &base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbg_graph::algo::cycles::{all_pairwise_edge_disjoint, is_cycle, is_hamiltonian_cycle};
    use dbg_graph::{DeBruijn, Topology};

    #[test]
    fn lemma_3_9_example_lift_of_a_4_cycle() {
        // The 4-cycle (110, 100, 001, 011) of B(2,3) lifts to the 12-cycle
        // listed after Lemma 3.9.
        let b = DeBruijn::new(2, 3);
        let f = Butterfly::new(2, 3);
        let cycle: Vec<usize> = ["110", "100", "001", "011"]
            .iter()
            .map(|s| b.node(s).unwrap())
            .collect();
        let lifted = lift_cycle(&f, &cycle);
        let expected: Vec<usize> = [
            (0u32, "110"),
            (1, "010"),
            (2, "010"),
            (0, "011"),
            (1, "011"),
            (2, "001"),
            (0, "001"),
            (1, "101"),
            (2, "101"),
            (0, "100"),
            (1, "100"),
            (2, "110"),
        ]
        .iter()
        .map(|&(lvl, w)| f.node_id(lvl, f.space().parse(w).unwrap()))
        .collect();
        assert_eq!(lifted, expected);
        assert!(is_cycle(&f, &lifted));
    }

    #[test]
    fn lift_length_is_lcm() {
        let f = Butterfly::new(3, 4);
        let b = DeBruijn::new(3, 4);
        // The necklace of 0012 is a 4-cycle; LCM(4,4) = 4.
        let n0012 = b.node("0012").unwrap();
        let cycle = vec![
            n0012,
            b.node("0120").unwrap(),
            b.node("1200").unwrap(),
            b.node("2001").unwrap(),
        ];
        assert_eq!(lift_cycle(&f, &cycle).len(), 4);
        // A 6-cycle (the circular sequence 0,0,1,0,1,1) lifts to LCM(6,4) = 12.
        let six = crate::seq::nodes_from_symbols(b.space(), &[0, 0, 1, 0, 1, 1]);
        assert!(is_cycle(&b, &six));
        let lifted = lift_cycle(&f, &six);
        assert_eq!(lifted.len(), 12);
        assert!(is_cycle(&f, &lifted));
    }

    #[test]
    fn project_edge_inverts_lifting() {
        let f = Butterfly::new(2, 3);
        let b = DeBruijn::new(2, 3);
        for v in 0..f.len() {
            for u in f.successors(v) {
                let (x, y) = project_edge(&f, v, u);
                assert!(
                    b.is_edge(x, y),
                    "projection of a butterfly edge must be a de Bruijn edge"
                );
            }
        }
    }

    #[test]
    fn proposition_3_6_disjoint_hamiltonian_cycles() {
        for (d, n) in [(2u64, 3u32), (3, 2), (4, 3), (5, 2)] {
            let embedder = ButterflyEmbedder::new(d, n);
            let cycles = embedder.disjoint_hamiltonian_cycles();
            assert_eq!(cycles.len() as u64, psi(d), "d={d} n={n}");
            let f = embedder.butterfly();
            for c in &cycles {
                assert!(
                    is_hamiltonian_cycle(f, c),
                    "d={d} n={n}: lift is not Hamiltonian"
                );
            }
            assert!(all_pairwise_edge_disjoint(&cycles), "d={d} n={n}");
        }
    }

    #[test]
    fn proposition_3_5_fault_tolerant_butterfly_embedding() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for (d, n) in [(3u64, 2u32), (4, 3), (5, 2)] {
            let embedder = ButterflyEmbedder::new(d, n);
            let f = embedder.butterfly();
            let tol = EdgeFaultEmbedder::tolerance(d) as usize;
            let mut rng = StdRng::seed_from_u64(u64::from(n) * 97 + d);
            for _ in 0..3 {
                // Random butterfly edge faults up to the guaranteed tolerance.
                let mut faults = Vec::new();
                while faults.len() < tol {
                    let v = rng.gen_range(0..f.len());
                    let succs = f.successors(v);
                    let u = succs[rng.gen_range(0..succs.len())];
                    if !faults.contains(&(v, u)) {
                        faults.push((v, u));
                    }
                }
                let cycle = embedder
                    .hamiltonian_avoiding(&faults)
                    .expect("tolerance faults must be embeddable");
                assert!(is_hamiltonian_cycle(f, &cycle));
                for i in 0..cycle.len() {
                    let e = (cycle[i], cycle[(i + 1) % cycle.len()]);
                    assert!(
                        !faults.contains(&e),
                        "lifted cycle uses a faulty butterfly edge"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "gcd")]
    fn hamiltonian_lift_requires_coprime_parameters() {
        let embedder = ButterflyEmbedder::new(2, 4);
        let _ = embedder.disjoint_hamiltonian_cycles();
    }
}
