//! Eulerian circuits in directed multigraphs (Hierholzer's algorithm).
//!
//! Two places in the paper lean on Euler circuits:
//!
//! * the FFC correctness proof shows that the path J traced through the
//!   modified necklace tree D is an Eulerian circuit of D (Lemma 2.2), and
//! * the worst-case optimality argument of Section 2.5 removes a circuit
//!   from B(d,n−1) and partitions what is left into Eulerian components.
//!
//! The classical fact used there — a digraph has an Eulerian circuit iff it
//! is connected (ignoring isolated nodes) and balanced — is implemented
//! here and exercised by the tests.

use crate::digraph::DiGraph;

/// Whether the digraph has an Eulerian circuit: every node balanced and all
/// edges in a single weakly connected component.
#[must_use]
pub fn is_eulerian(graph: &DiGraph) -> bool {
    if !graph.is_balanced() {
        return false;
    }
    // All nodes with degree > 0 must be weakly connected.
    let n = graph.len();
    let start = (0..n).find(|&v| !graph.out_neighbors(v).is_empty());
    let Some(start) = start else {
        return true; // no edges at all
    };
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start] = true;
    while let Some(v) = stack.pop() {
        for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            let u = u as usize;
            if !seen[u] {
                seen[u] = true;
                stack.push(u);
            }
        }
    }
    (0..n)
        .all(|v| seen[v] || (graph.out_neighbors(v).is_empty() && graph.in_neighbors(v).is_empty()))
}

/// An Eulerian circuit of the digraph as a node sequence
/// `v_0, v_1, …, v_m = v_0` traversing every edge exactly once, or `None`
/// if the graph is not Eulerian. The circuit starts at `start` if that node
/// has outgoing edges.
#[must_use]
pub fn eulerian_circuit(graph: &DiGraph, start: usize) -> Option<Vec<usize>> {
    if !is_eulerian(graph) {
        return None;
    }
    let m = graph.num_edges();
    if m == 0 {
        return Some(vec![start]);
    }
    let start = if graph.out_neighbors(start).is_empty() {
        (0..graph.len()).find(|&v| !graph.out_neighbors(v).is_empty())?
    } else {
        start
    };
    // Hierholzer with explicit per-node cursors.
    let mut cursor = vec![0usize; graph.len()];
    let mut stack = vec![start];
    let mut circuit = Vec::with_capacity(m + 1);
    while let Some(&v) = stack.last() {
        if cursor[v] < graph.out_neighbors(v).len() {
            let u = graph.out_neighbors(v)[cursor[v]] as usize;
            cursor[v] += 1;
            stack.push(u);
        } else {
            circuit.push(v);
            stack.pop();
        }
    }
    circuit.reverse();
    if circuit.len() != m + 1 {
        return None; // disconnected edge set (defensive; is_eulerian should have caught it)
    }
    Some(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;

    fn verify_circuit(graph: &DiGraph, circuit: &[usize]) {
        use std::collections::HashMap;
        let mut used: HashMap<(usize, usize), usize> = HashMap::new();
        for w in circuit.windows(2) {
            *used.entry((w[0], w[1])).or_insert(0) += 1;
        }
        let mut expected: HashMap<(usize, usize), usize> = HashMap::new();
        for e in graph.edges() {
            *expected.entry(e).or_insert(0) += 1;
        }
        assert_eq!(
            used, expected,
            "circuit must traverse every edge exactly once"
        );
        assert_eq!(circuit.first(), circuit.last());
    }

    #[test]
    fn simple_eulerian_digraph() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2), (2, 1), (1, 0)]);
        assert!(is_eulerian(&g));
        let c = eulerian_circuit(&g, 0).unwrap();
        verify_circuit(&g, &c);
    }

    #[test]
    fn non_balanced_graph_is_not_eulerian() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!is_eulerian(&g));
        assert!(eulerian_circuit(&g, 0).is_none());
    }

    #[test]
    fn disconnected_balanced_graph_is_not_eulerian() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert!(g.is_balanced());
        assert!(!is_eulerian(&g));
    }

    #[test]
    fn debruijn_digraph_is_eulerian() {
        // B(d,n) with loops is balanced and strongly connected, so it has an
        // Eulerian circuit; the circuit corresponds to a de Bruijn sequence
        // of order n+1 (the line-graph correspondence of Section 2.5).
        let g = DeBruijn::new(2, 3).to_digraph();
        assert!(is_eulerian(&g));
        let c = eulerian_circuit(&g, 0).unwrap();
        verify_circuit(&g, &c);
        assert_eq!(c.len(), g.num_edges() + 1);
    }

    #[test]
    fn empty_graph_trivially_eulerian() {
        let g = DiGraph::new(3);
        assert!(is_eulerian(&g));
        assert_eq!(eulerian_circuit(&g, 1), Some(vec![1]));
    }

    #[test]
    fn isolated_nodes_are_allowed() {
        let g = DiGraph::from_edges(5, &[(1, 2), (2, 1)]);
        assert!(is_eulerian(&g));
        let c = eulerian_circuit(&g, 1).unwrap();
        verify_circuit(&g, &c);
    }
}
