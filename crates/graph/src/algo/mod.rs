//! Graph algorithms used by the embedding layer.

pub mod bfs;
pub mod components;
pub mod cycles;
pub mod euler;

pub use bfs::{bfs_distances, bfs_tree, eccentricity, BfsTree};
pub use components::{
    largest_weak_component, scc_component_ids, strongly_connected_components, weak_components,
    weakly_connected,
};
pub use cycles::{
    cycle_edges, cycles_edge_disjoint, is_cycle, is_hamiltonian_cycle, longest_cycle_brute_force,
};
pub use euler::{eulerian_circuit, is_eulerian};
