//! Breadth-first search, distances, eccentricity and BFS spanning trees.
//!
//! The network-level FFC algorithm (Section 2.4) builds its spanning tree
//! T′ from the propagation pattern of a broadcast: a node's parent is the
//! predecessor from which it *first* received the message, ties broken by
//! the minimal predecessor. A synchronous BFS that scans nodes in
//! increasing id order per level reproduces exactly that rule, so
//! [`bfs_tree`] is both a generic utility and the centralized model of the
//! broadcast phase. The number of rounds equals the eccentricity of the
//! root — the quantity tabulated in Tables 2.1 and 2.2.

use crate::topology::Topology;

/// The result of a BFS from a root: parents and levels of reached nodes.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The BFS root.
    pub root: usize,
    /// `parent[v]` is the BFS parent of `v`, or `usize::MAX` if `v` is the
    /// root or unreached.
    pub parent: Vec<usize>,
    /// `level[v]` is the distance from the root, or `usize::MAX` if unreached.
    pub level: Vec<usize>,
    /// Nodes in the order they were discovered (level by level, increasing
    /// id within a level).
    pub order: Vec<usize>,
}

impl BfsTree {
    /// Whether `v` was reached from the root.
    #[must_use]
    pub fn reached(&self, v: usize) -> bool {
        self.level[v] != usize::MAX
    }

    /// The number of reached nodes (including the root).
    #[must_use]
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// The largest level reached — the eccentricity of the root within its
    /// component, and the number of broadcast rounds in the FFC protocol.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.order.iter().map(|&v| self.level[v]).max().unwrap_or(0)
    }
}

/// BFS from `root` over `graph`, breaking parent ties by the *minimal
/// predecessor* exactly as the paper's broadcast does. Nodes with no path
/// from `root` get level `usize::MAX`.
#[must_use]
pub fn bfs_tree<T: Topology>(graph: &T, root: usize) -> BfsTree {
    let n = graph.node_count();
    let mut parent = vec![usize::MAX; n];
    let mut level = vec![usize::MAX; n];
    let mut order = Vec::new();
    level[root] = 0;
    order.push(root);
    let mut frontier = vec![root];
    let mut depth = 0usize;
    while !frontier.is_empty() {
        depth += 1;
        // Collect candidate parents per newly-reached node; the minimal
        // predecessor that reaches it on this round wins.
        let mut next: Vec<usize> = Vec::new();
        // Frontier is scanned in increasing node id so the first assignment
        // of a parent is already the minimal one.
        let mut sorted = frontier.clone();
        sorted.sort_unstable();
        for &v in &sorted {
            graph.visit_successors(v, |u| {
                if level[u] == usize::MAX {
                    level[u] = depth;
                    parent[u] = v;
                    next.push(u);
                } else if level[u] == depth && parent[u] > v {
                    parent[u] = v;
                }
            });
        }
        next.sort_unstable();
        next.dedup();
        order.extend(next.iter().copied());
        frontier = next;
    }
    BfsTree {
        root,
        parent,
        level,
        order,
    }
}

/// Shortest-path distances from `root`; unreachable nodes get `usize::MAX`.
#[must_use]
pub fn bfs_distances<T: Topology>(graph: &T, root: usize) -> Vec<usize> {
    bfs_tree(graph, root).level
}

/// The eccentricity of `root` *within its reachable set*: the greatest
/// distance from `root` to any node it can reach.
#[must_use]
pub fn eccentricity<T: Topology>(graph: &T, root: usize) -> usize {
    bfs_tree(graph, root).depth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;
    use crate::digraph::DiGraph;

    #[test]
    fn path_graph_distances() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.level, vec![0, 1, 2, 3]);
        assert_eq!(t.parent[3], 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.reached_count(), 4);
        assert_eq!(eccentricity(&g, 0), 3);
        // Unreachable direction.
        let back = bfs_distances(&g, 3);
        assert_eq!(back[0], usize::MAX);
    }

    #[test]
    fn parent_tie_break_is_minimal_predecessor() {
        // Both 0 and 1 reach 3 at distance 1 from a virtual root 2.
        let g = DiGraph::from_edges(4, &[(2, 0), (2, 1), (0, 3), (1, 3)]);
        let t = bfs_tree(&g, 2);
        assert_eq!(t.level[3], 2);
        assert_eq!(t.parent[3], 0, "minimal predecessor wins the tie");
    }

    #[test]
    fn debruijn_diameter_is_n() {
        // diam(B(d,n)) = n.
        for (d, n) in [(2u64, 4u32), (3, 3), (4, 2)] {
            let g = DeBruijn::new(d, n);
            let ecc = eccentricity(&g, 0);
            assert_eq!(ecc, n as usize, "d={d} n={n}");
        }
    }

    #[test]
    fn reached_flags() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let t = bfs_tree(&g, 0);
        assert!(t.reached(1));
        assert!(!t.reached(2));
    }
}
