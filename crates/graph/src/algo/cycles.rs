//! Cycle validation and small-instance exact longest-cycle search.
//!
//! Every embedding this workspace produces is ultimately *checked* by the
//! routines here: a ring embedding with unit dilation is nothing more than
//! a simple cycle of the (faulty) graph, so [`is_cycle`] is the ground
//! truth the property tests lean on. [`longest_cycle_brute_force`] gives
//! exact optima on tiny instances, which is how the worst-case optimality
//! claims (Section 2.5) and the naive-baseline ablation are validated.

use std::collections::HashSet;

use crate::topology::Topology;

/// Whether `nodes`, read circularly, is a simple cycle of `graph`
/// (all nodes distinct, every consecutive pair an edge, length ≥ 1;
/// a single node counts only if it has a self-loop).
#[must_use]
pub fn is_cycle<T: Topology + ?Sized>(graph: &T, nodes: &[usize]) -> bool {
    if nodes.is_empty() {
        return false;
    }
    let mut seen = HashSet::with_capacity(nodes.len());
    for &v in nodes {
        if v >= graph.node_count() || !seen.insert(v) {
            return false;
        }
    }
    for i in 0..nodes.len() {
        let u = nodes[i];
        let v = nodes[(i + 1) % nodes.len()];
        if !graph.has_edge(u, v) {
            return false;
        }
    }
    true
}

/// Whether `nodes` is a Hamiltonian cycle of `graph`.
#[must_use]
pub fn is_hamiltonian_cycle<T: Topology + ?Sized>(graph: &T, nodes: &[usize]) -> bool {
    nodes.len() == graph.node_count() && is_cycle(graph, nodes)
}

/// The directed edge list of a cycle (consecutive pairs, wrapping around).
#[must_use]
pub fn cycle_edges(nodes: &[usize]) -> Vec<(usize, usize)> {
    (0..nodes.len())
        .map(|i| (nodes[i], nodes[(i + 1) % nodes.len()]))
        .collect()
}

/// Whether two cycles are edge-disjoint (share no directed edge).
#[must_use]
pub fn cycles_edge_disjoint(a: &[usize], b: &[usize]) -> bool {
    let ea: HashSet<(usize, usize)> = cycle_edges(a).into_iter().collect();
    cycle_edges(b).iter().all(|e| !ea.contains(e))
}

/// Whether every pair of the given cycles is edge-disjoint.
#[must_use]
pub fn all_pairwise_edge_disjoint(cycles: &[Vec<usize>]) -> bool {
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for c in cycles {
        for e in cycle_edges(c) {
            if !seen.insert(e) {
                return false;
            }
        }
    }
    true
}

/// Exact longest simple cycle by exhaustive DFS. Exponential — intended for
/// graphs of at most ~20 nodes (worst-case optimality checks and the naive
/// baseline on toy instances). Returns an empty vector if the graph is
/// acyclic.
#[must_use]
pub fn longest_cycle_brute_force<T: Topology + ?Sized>(graph: &T, node_limit: usize) -> Vec<usize> {
    let n = graph.node_count();
    assert!(
        n <= node_limit,
        "longest_cycle_brute_force is exponential; refusing {n} nodes (limit {node_limit})"
    );
    let mut best: Vec<usize> = Vec::new();
    let mut path: Vec<usize> = Vec::new();
    let mut on_path = vec![false; n];

    // A simple cycle's minimal node can be taken as the start, so only
    // search paths whose nodes all exceed the start node.
    fn dfs<T: Topology + ?Sized>(
        graph: &T,
        start: usize,
        v: usize,
        path: &mut Vec<usize>,
        on_path: &mut Vec<bool>,
        best: &mut Vec<usize>,
    ) {
        for u in graph.successors(v) {
            if u == start && path.len() > best.len() {
                *best = path.clone();
            }
            if u > start && !on_path[u] {
                path.push(u);
                on_path[u] = true;
                dfs(graph, start, u, path, on_path, best);
                on_path[u] = false;
                path.pop();
            }
        }
    }

    for start in 0..n {
        path.push(start);
        on_path[start] = true;
        dfs(graph, start, start, &mut path, &mut on_path, &mut best);
        on_path[start] = false;
        path.pop();
        if best.len() == n {
            break; // Hamiltonian — cannot do better.
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;
    use crate::digraph::DiGraph;

    #[test]
    fn cycle_validation() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 0)]);
        assert!(is_cycle(&g, &[0, 1, 2, 3]));
        assert!(is_hamiltonian_cycle(&g, &[0, 1, 2, 3]));
        assert!(is_cycle(&g, &[0])); // self-loop
        assert!(!is_cycle(&g, &[1]));
        assert!(!is_cycle(&g, &[0, 1, 2])); // 2→0 missing
        assert!(!is_cycle(&g, &[0, 1, 1, 2])); // repeated node
        assert!(!is_cycle(&g, &[]));
    }

    #[test]
    fn edge_utilities() {
        assert_eq!(cycle_edges(&[3, 1, 2]), vec![(3, 1), (1, 2), (2, 3)]);
        assert!(cycles_edge_disjoint(&[0, 1, 2], &[0, 2, 1]));
        assert!(!cycles_edge_disjoint(&[0, 1, 2], &[1, 2, 0]));
        assert!(all_pairwise_edge_disjoint(&[vec![0, 1, 2], vec![0, 2, 1]]));
        assert!(!all_pairwise_edge_disjoint(&[vec![0, 1, 2], vec![1, 2, 0]]));
    }

    #[test]
    fn brute_force_finds_hamiltonian_in_b23() {
        let g = DeBruijn::new(2, 3);
        let cycle = longest_cycle_brute_force(&g, 16);
        assert_eq!(cycle.len(), 8, "B(2,3) is Hamiltonian");
        assert!(is_hamiltonian_cycle(&g, &cycle));
    }

    #[test]
    fn brute_force_on_dag_returns_empty() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(longest_cycle_brute_force(&g, 16).is_empty());
    }

    #[test]
    fn brute_force_respects_faulty_view() {
        use crate::faults::FaultSet;
        let g = DeBruijn::new(2, 3);
        // Kill node 010. The longest fault-free cycle is
        // 000→001→011→111→110→100→000 with 6 nodes (any cycle through 101
        // is forced onto the 4-cycle 110→101→011→111→110 or shorter).
        let faults = FaultSet::from_nodes([g.node("010").unwrap()]);
        let view = faults.view(&g);
        let cycle = longest_cycle_brute_force(&view, 16);
        assert!(is_cycle(&view, &cycle));
        assert!(!cycle.contains(&g.node("010").unwrap()));
        assert_eq!(cycle.len(), 6);
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn brute_force_refuses_large_graphs() {
        let g = DeBruijn::new(2, 6);
        let _ = longest_cycle_brute_force(&g, 20);
    }
}
