//! Connected components (weak and strong).
//!
//! The faulty de Bruijn graph B* of Chapter 2 is "the largest component in
//! the graph obtained by removing the faulty necklaces". For the sizes of
//! fault set the paper analyses (f ≤ d−2) the graph stays strongly
//! connected (Proposition 2.2), but the Monte-Carlo sweeps of Tables 2.1
//! and 2.2 push the fault count far beyond the bound, so a real component
//! search is needed. Strong connectivity (Tarjan) is what matters for a
//! digraph-embedded ring; weak connectivity is also provided for
//! diagnostics.

use crate::topology::Topology;

/// Labels each node with a weak-component id (edges treated as undirected);
/// returns `(labels, component_count)`.
#[must_use]
pub fn weak_components<T: Topology>(graph: &T) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    // Build an undirected adjacency once; successor-only traversal cannot
    // walk backwards over directed edges.
    let mut undirected: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        graph.visit_successors(v, |u| {
            undirected[v].push(u as u32);
            undirected[u].push(v as u32);
        });
    }
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = count;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &u in &undirected[v] {
                let u = u as usize;
                if label[u] == usize::MAX {
                    label[u] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// Whether the graph is weakly connected.
#[must_use]
pub fn weakly_connected<T: Topology>(graph: &T) -> bool {
    weak_components(graph).1 <= 1
}

/// Strongly connected components via an iterative Tarjan algorithm.
/// Returns one vector of node ids per component, in reverse topological
/// order of the condensation.
#[must_use]
pub fn strongly_connected_components<T: Topology>(graph: &T) -> Vec<Vec<usize>> {
    let n = graph.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative DFS frames: (node, successor list, next child position).
    struct Frame {
        v: usize,
        succ: Vec<usize>,
        child: usize,
    }

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame {
            v: start,
            succ: graph.successors(start),
            child: 0,
        }];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = frames.last_mut() {
            if frame.child < frame.succ.len() {
                let w = frame.succ[frame.child];
                frame.child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push(Frame {
                        v: w,
                        succ: graph.successors(w),
                        child: 0,
                    });
                } else if on_stack[w] {
                    let v = frame.v;
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                let v = frame.v;
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.v;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// Labels every node with the id of its strongly connected component;
/// returns `(ids, component_count)`. Component ids follow the same reverse
/// topological order as [`strongly_connected_components`].
///
/// Use this instead of scanning the component *lists* when all that is
/// needed is membership queries — `ids[u] == ids[v]` is O(1), whereas
/// `components.iter().find(|c| c.contains(&v))` is O(components × size).
#[must_use]
pub fn scc_component_ids<T: Topology>(graph: &T) -> (Vec<usize>, usize) {
    let sccs = strongly_connected_components(graph);
    let mut ids = vec![usize::MAX; graph.node_count()];
    for (id, comp) in sccs.iter().enumerate() {
        for &v in comp {
            ids[v] = id;
        }
    }
    (ids, sccs.len())
}

/// The nodes of the largest weak component among nodes satisfying `alive`
/// (nodes failing the predicate are ignored entirely). Used to extract B*
/// from the faulty de Bruijn graph: pass the necklace-fault predicate.
#[must_use]
pub fn largest_weak_component<T, F>(graph: &T, alive: F) -> Vec<usize>
where
    T: Topology,
    F: Fn(usize) -> bool,
{
    let n = graph.node_count();
    let mut undirected: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n {
        if !alive(v) {
            continue;
        }
        graph.visit_successors(v, |u| {
            if alive(u) {
                undirected[v].push(u as u32);
                undirected[u].push(v as u32);
            }
        });
    }
    let mut label = vec![usize::MAX; n];
    let mut best: Vec<usize> = Vec::new();
    let mut count = 0usize;
    for start in 0..n {
        if !alive(start) || label[start] != usize::MAX {
            continue;
        }
        let mut comp = vec![start];
        label[start] = count;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &u in &undirected[v] {
                let u = u as usize;
                if label[u] == usize::MAX {
                    label[u] = count;
                    comp.push(u);
                    stack.push(u);
                }
            }
        }
        if comp.len() > best.len() {
            best = comp;
        }
        count += 1;
    }
    best.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;
    use crate::digraph::DiGraph;

    #[test]
    fn weak_components_of_disjoint_cycles() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let (labels, count) = weak_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        assert!(!weakly_connected(&g));
    }

    #[test]
    fn scc_of_two_cycles_joined_one_way() {
        // 0→1→2→0 and 3→4→3, with a one-way bridge 2→3.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        let mut sccs = strongly_connected_components(&g);
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn debruijn_is_strongly_connected() {
        for (d, n) in [(2u64, 4u32), (3, 3)] {
            let g = DeBruijn::new(d, n);
            let sccs = strongly_connected_components(&g);
            assert_eq!(sccs.len(), 1, "B({d},{n}) should be strongly connected");
            assert!(weakly_connected(&g));
        }
    }

    #[test]
    fn component_ids_agree_with_component_lists() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        let (ids, count) = scc_component_ids(&g);
        assert_eq!(count, 2);
        let lists = strongly_connected_components(&g);
        for (id, comp) in lists.iter().enumerate() {
            for &v in comp {
                assert_eq!(ids[v], id, "node {v}");
            }
        }
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[3]);
    }

    #[test]
    fn largest_component_respects_alive_mask() {
        // A 4-cycle and a 3-cycle; kill two opposite nodes of the 4-cycle so
        // the 3-cycle becomes the largest surviving component.
        let g = DiGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6), (6, 4)]);
        let comp = largest_weak_component(&g, |v| v != 1 && v != 3);
        assert_eq!(comp, vec![4, 5, 6]);
        let all = largest_weak_component(&g, |_| true);
        assert_eq!(all, vec![0, 1, 2, 3]);
    }
}
