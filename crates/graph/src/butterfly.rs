//! The d-ary (wrapped) butterfly digraph F(d,n).
//!
//! Section 3.4: F(d,n) has node set Z_n × Z_d^n, with edges from
//! `(k, x_1…x_n)` to `(k+1 mod n, x_1 … x_k a x_{k+2} … x_n)` for every
//! symbol `a` — i.e. moving from level k to level k+1 may rewrite the
//! (k+1)-st digit of the column word (1-based), and nothing else.
//!
//! The key structural fact (Annexstein–Baumslag–Rosenberg, reproduced as
//! Lemma 3.8) is that grouping the butterfly nodes
//! `S_X = {(i, π^{-i}(X)) : 0 ≤ i < n}` — one node per level, with the
//! column rotated right i times — and contracting each group yields exactly
//! B(d,n). The embedding results of Section 3.4 ride on that map, which is
//! exposed here as [`Butterfly::debruijn_class_member`].

use dbg_algebra::words::WordSpace;

use crate::digraph::DiGraph;
use crate::topology::Topology;

/// The d-ary butterfly digraph F(d,n) with n·d^n nodes.
#[derive(Clone, Copy, Debug)]
pub struct Butterfly {
    space: WordSpace,
}

impl Butterfly {
    /// Creates F(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        Butterfly {
            space: WordSpace::new(d, n),
        }
    }

    /// Alphabet size d.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.space.d()
    }

    /// Number of levels n (also the column word length).
    #[must_use]
    pub fn n(&self) -> u32 {
        self.space.n()
    }

    /// The column word space.
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// Number of nodes, n·d^n.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n() as usize * self.space.count() as usize
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Packs a (level, column) pair into a node id.
    #[must_use]
    pub fn node_id(&self, level: u32, column: u64) -> usize {
        debug_assert!(level < self.n());
        debug_assert!(column < self.space.count());
        level as usize * self.space.count() as usize + column as usize
    }

    /// Unpacks a node id into its (level, column) pair.
    #[must_use]
    pub fn level_column(&self, v: usize) -> (u32, u64) {
        let count = self.space.count() as usize;
        ((v / count) as u32, (v % count) as u64)
    }

    /// The successor of `(level, column)` obtained by writing symbol `a`
    /// into digit position `level + 1` (1-based) while stepping to the next
    /// level.
    #[must_use]
    pub fn successor(&self, v: usize, a: u64) -> usize {
        let (level, column) = self.level_column(v);
        let next_level = (level + 1) % self.n();
        let digits_pos = level + 1; // 1-based digit rewritten on this hop
        let place = dbg_algebra::num::pow(self.space.d(), self.space.n() - digits_pos);
        let old_digit = (column / place) % self.space.d();
        let new_column = column - old_digit * place + a * place;
        self.node_id(next_level, new_column)
    }

    /// Materialises the digraph.
    #[must_use]
    pub fn to_digraph(&self) -> DiGraph {
        DiGraph::from_topology(self)
    }

    /// The butterfly node at level `i` in the de Bruijn class S_X of word
    /// `x`: `(i, π^{-i}(x))` (the column is `x` rotated *right* i times).
    /// This is the `S_X^i` notation of Section 3.4.
    #[must_use]
    pub fn debruijn_class_member(&self, x: u64, i: u32) -> usize {
        let mut col = x;
        for _ in 0..(i % self.n()) {
            col = self.space.rotate_right(col);
        }
        self.node_id(i % self.n(), col)
    }

    /// The full de Bruijn class S_X = {(i, π^{-i}(x)) : 0 ≤ i < n}.
    #[must_use]
    pub fn debruijn_class(&self, x: u64) -> Vec<usize> {
        (0..self.n())
            .map(|i| self.debruijn_class_member(x, i))
            .collect()
    }

    /// Formats a node id as `(level, column-word)`.
    #[must_use]
    pub fn label(&self, v: usize) -> String {
        let (level, column) = self.level_column(v);
        format!("({level},{})", self.space.format(column))
    }
}

impl Topology for Butterfly {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        for a in 0..self.d() {
            visit(self.successor(v, a));
        }
    }

    fn out_degree(&self, _v: usize) -> usize {
        self.d() as usize
    }

    fn edge_count(&self) -> usize {
        self.len() * self.d() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;

    #[test]
    fn f23_counts_match_figure_3_4() {
        let f = Butterfly::new(2, 3);
        assert_eq!(f.len(), 24);
        assert_eq!(f.edge_count(), 48);
        let dg = f.to_digraph();
        for v in 0..f.len() {
            assert_eq!(dg.out_neighbors(v).len(), 2);
            assert_eq!(dg.in_degree(v), 2);
        }
    }

    #[test]
    fn node_id_roundtrip() {
        let f = Butterfly::new(3, 4);
        for level in 0..4 {
            for col in 0..81 {
                let id = f.node_id(level, col);
                assert_eq!(f.level_column(id), (level, col));
            }
        }
    }

    #[test]
    fn successors_only_touch_one_digit_and_advance_level() {
        let f = Butterfly::new(3, 3);
        let s = f.space();
        for v in 0..f.len() {
            let (level, col) = f.level_column(v);
            for a in 0..3 {
                let (nl, nc) = f.level_column(f.successor(v, a));
                assert_eq!(nl, (level + 1) % 3);
                // The two columns differ at most in digit level+1 (1-based).
                let mut diff = 0;
                for i in 1..=3u32 {
                    if s.digit(col, i) != s.digit(nc, i) {
                        assert_eq!(i, level + 1);
                        diff += 1;
                    }
                }
                assert!(diff <= 1);
            }
        }
    }

    #[test]
    fn lemma_3_8_debruijn_edges_lift_to_butterfly_edges() {
        // For every de Bruijn edge X → Y and level i, there is a butterfly
        // edge from the level-i member of S_X to the level-(i+1) member of S_Y.
        for (d, n) in [(2u64, 3u32), (3, 3), (2, 4)] {
            let b = DeBruijn::new(d, n);
            let f = Butterfly::new(d, n);
            for x in 0..b.len() {
                for y in b.successors(x) {
                    for i in 0..n {
                        let from = f.debruijn_class_member(x as u64, i);
                        let to = f.debruijn_class_member(y as u64, (i + 1) % n);
                        assert!(
                            f.successors(from).contains(&to),
                            "missing lifted edge d={d} n={n} x={x} y={y} i={i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn debruijn_classes_partition_the_butterfly() {
        let f = Butterfly::new(2, 3);
        let b = DeBruijn::new(2, 3);
        let mut seen = vec![false; f.len()];
        for x in 0..b.len() {
            for v in f.debruijn_class(x as u64) {
                assert!(!seen[v], "butterfly node in two classes");
                seen[v] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
