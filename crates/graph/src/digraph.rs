//! A materialised directed multigraph with adjacency lists.

use crate::topology::Topology;

/// A directed multigraph over nodes `0..n`. Parallel edges and self-loops
/// are allowed (the de Bruijn digraph has loops at the constant words, and
/// the modified graph MB(d,n) of Section 3.2.3 is genuinely a multigraph).
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    out: Vec<Vec<u32>>,
    inn: Vec<Vec<u32>>,
    edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Adds the directed edge `(u, v)`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.out.len() && v < self.out.len(),
            "edge endpoint out of range"
        );
        self.out[u].push(v as u32);
        self.inn[v].push(u as u32);
        self.edges += 1;
    }

    /// Adds `(u, v)` only if it is not already present; returns whether it was added.
    pub fn add_edge_unique(&mut self, u: usize, v: usize) -> bool {
        if self.out[u].iter().any(|&w| w as usize == v) {
            false
        } else {
            self.add_edge(u, v);
            true
        }
    }

    /// Removes one copy of the directed edge `(u, v)`; returns whether an edge was removed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if let Some(pos) = self.out[u].iter().position(|&w| w as usize == v) {
            self.out[u].swap_remove(pos);
            let ipos = self.inn[v]
                .iter()
                .position(|&w| w as usize == u)
                .expect("in/out adjacency lists out of sync");
            self.inn[v].swap_remove(ipos);
            self.edges -= 1;
            true
        } else {
            false
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Number of directed edges (with multiplicity).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Successor list of `v`.
    #[must_use]
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.out[v]
    }

    /// Predecessor list of `v`.
    #[must_use]
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.inn[v]
    }

    /// In-degree of `v`.
    #[must_use]
    pub fn in_degree(&self, v: usize) -> usize {
        self.inn[v].len()
    }

    /// Whether every node has equal in-degree and out-degree (a *balanced*
    /// digraph — the Eulerian-circuit condition used in Section 2.5).
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        (0..self.len()).all(|v| self.out[v].len() == self.inn[v].len())
    }

    /// Iterates over all directed edges `(u, v)` with multiplicity.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v as usize)))
    }

    /// Builds a graph from an explicit edge list over `n` nodes.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// The reverse (transpose) graph.
    #[must_use]
    pub fn reverse(&self) -> Self {
        DiGraph {
            out: self.inn.clone(),
            inn: self.out.clone(),
            edges: self.edges,
        }
    }

    /// Materialises any [`Topology`] into a `DiGraph`.
    #[must_use]
    pub fn from_topology<T: Topology + ?Sized>(t: &T) -> Self {
        let n = t.node_count();
        let mut g = Self::new(n);
        for v in 0..n {
            t.for_each_successor(v, &mut |u| g.add_edge(v, u));
        }
        g
    }
}

impl Topology for DiGraph {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        for &u in &self.out[v] {
            visit(u as usize);
        }
    }

    #[inline]
    fn visit_successors<F: FnMut(usize)>(&self, v: usize, mut visit: F) {
        for &u in &self.out[v] {
            visit(u as usize);
        }
    }

    fn successors(&self, v: usize) -> Vec<usize> {
        self.out[v].iter().map(|&u| u as usize).collect()
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn out_degree(&self, v: usize) -> usize {
        self.out[v].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_edges() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 0]);
        assert!(g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.in_degree(1), 0);
    }

    #[test]
    fn add_edge_unique() {
        let mut g = DiGraph::new(2);
        assert!(g.add_edge_unique(0, 1));
        assert!(!g.add_edge_unique(0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn balanced_and_reverse() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(g.is_balanced());
        let r = g.reverse();
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(0, 1));
        let unbalanced = DiGraph::from_edges(3, &[(0, 1), (0, 2)]);
        assert!(!unbalanced.is_balanced());
    }

    #[test]
    fn edge_iterator_and_from_topology() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (2, 2)]);
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected.len(), 4);
        let g2 = DiGraph::from_topology(&g);
        assert_eq!(g2.num_edges(), 4);
        assert!(g2.has_edge(2, 2));
    }
}
