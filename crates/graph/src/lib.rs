//! Interconnection-network graph substrate.
//!
//! The Rowley–Bose ring-embedding algorithms operate on the d-ary de Bruijn
//! digraph B(d,n) and relate it to several other classical interconnection
//! topologies (the undirected de Bruijn graph, butterflies, hypercubes,
//! shuffle-exchange and Kautz graphs). This crate implements all of those
//! topologies from scratch together with the graph algorithms the
//! embeddings need:
//!
//! * [`digraph`] / [`ungraph`] — concrete adjacency-list containers.
//! * [`topology`] — the [`Topology`](topology::Topology) trait: a uniform
//!   "node count + successor enumeration" view shared by materialised
//!   graphs, implicit generators and fault-masked views.
//! * [`debruijn`], [`butterfly`], [`hypercube`], [`shuffle_exchange`],
//!   [`kautz`] — the network families.
//! * [`faults`] — node/edge fault sets and the faulty view of a topology.
//! * [`algo`] — BFS/eccentricity, connected and strongly connected
//!   components, Eulerian circuits, cycle validation and brute-force
//!   longest-cycle search for small instances.
//! * [`dot`] — Graphviz export used by the figure-regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod butterfly;
pub mod debruijn;
pub mod digraph;
pub mod dot;
pub mod faults;
pub mod hypercube;
pub mod kautz;
pub mod routing;
pub mod shuffle_exchange;
pub mod topology;
pub mod ungraph;

pub use butterfly::Butterfly;
pub use debruijn::{DeBruijn, UndirectedDeBruijn};
pub use digraph::DiGraph;
pub use faults::{FaultSet, FaultyView};
pub use hypercube::Hypercube;
pub use kautz::Kautz;
pub use shuffle_exchange::ShuffleExchange;
pub use topology::Topology;
pub use ungraph::UnGraph;
