//! Routing in the de Bruijn digraph.
//!
//! Two routing schemes:
//!
//! * [`shortest_route`] — the classical shift-register route: align the
//!   longest suffix of the source with a prefix of the destination and
//!   append the remaining digits; at most n hops (the diameter of B(d,n)).
//! * [`fault_avoiding_route`] — the constructive routing scheme inside the
//!   proof of Proposition 2.2: route through a constant word a^n (with the
//!   one-hop shortcut that skips the constant word itself), choosing the
//!   entry symbol `a` and exit offset `i` so that every intermediate
//!   necklace is fault-free. Because the d entry paths are pairwise
//!   necklace-disjoint and the d − 1 exit paths are pairwise
//!   necklace-disjoint, up to d − 2 faulty necklaces can always be avoided,
//!   and the route has at most 2n hops.

use dbg_algebra::words::WordSpace;

/// The length of the shortest path from `u` to `v` in B(d,n): n minus the
/// longest overlap between a suffix of `u` and a prefix of `v`.
#[must_use]
pub fn distance(space: WordSpace, u: usize, v: usize) -> u32 {
    let n = space.n();
    let du = space.digits(u as u64);
    let dv = space.digits(v as u64);
    for overlap in (0..=n).rev() {
        let k = overlap as usize;
        if du[(n as usize - k)..] == dv[..k] {
            return n - overlap;
        }
    }
    n
}

/// The shortest route from `u` to `v` as a node sequence (inclusive of both
/// endpoints); its length is `distance(u, v) + 1`.
#[must_use]
pub fn shortest_route(space: WordSpace, u: usize, v: usize) -> Vec<usize> {
    let hops = distance(space, u, v);
    let dv = space.digits(v as u64);
    let mut path = vec![u];
    let mut cur = u as u64;
    let n = space.n();
    for step in 0..hops {
        let digit = dv[(n - hops + step) as usize];
        cur = space.shift_append(cur, digit);
        path.push(cur as usize);
    }
    debug_assert_eq!(*path.last().unwrap(), v);
    path
}

/// The Proposition 2.2 path from `x` toward the constant word a^n: the
/// prefix path P_a, stopping at the node x_n·a^{n−1} (one hop short of a^n).
#[must_use]
pub fn entry_path(space: WordSpace, x: usize, a: u64) -> Vec<usize> {
    let n = space.n();
    let mut path = vec![x];
    let mut cur = x as u64;
    for _ in 0..n - 1 {
        cur = space.shift_append(cur, a);
        path.push(cur as usize);
    }
    path
}

/// The Proposition 2.2 path from a^{n−1}(a+i) to `y`: the suffix path Q_i
/// entered just after the skipped constant word.
#[must_use]
pub fn exit_path(space: WordSpace, y: usize, a: u64, i: u64) -> Vec<usize> {
    let d = space.d();
    let n = space.n();
    debug_assert!(i >= 1 && i < d);
    let mut digits = vec![a; n as usize];
    digits[n as usize - 1] = (a + i) % d;
    let mut cur = space.from_digits(&digits);
    let mut path = vec![cur as usize];
    let dy = space.digits(y as u64);
    for &digit in &dy {
        cur = space.shift_append(cur, digit);
        path.push(cur as usize);
    }
    debug_assert_eq!(*path.last().unwrap(), y);
    path
}

/// The full Proposition 2.2 route from `x` to `y` through the neighbourhood
/// of a^n with exit offset `i`: entry path, the shortcut hop, then the exit
/// path. At most 2n hops.
#[must_use]
pub fn route_via_constant(space: WordSpace, x: usize, y: usize, a: u64, i: u64) -> Vec<usize> {
    let mut path = entry_path(space, x, a);
    let exit = exit_path(space, y, a, i);
    // The shortcut: x_n·a^{n−1} → a^{n−1}(a+i) is a single de Bruijn hop.
    path.extend(exit);
    // Collapse an accidental duplicate if x already ends the entry path at
    // the exit path's first node (possible when x is itself near a^n).
    path.dedup();
    path
}

/// A route from `x` to `y` that avoids every node for which `blocked`
/// returns true (typically: membership of a faulty necklace), following the
/// Proposition 2.2 construction. Neither `x` nor `y` may be blocked.
/// Returns `None` only if every (a, i) combination is blocked — impossible
/// when fewer than d − 1 necklaces are faulty.
#[must_use]
pub fn fault_avoiding_route<F: Fn(usize) -> bool>(
    space: WordSpace,
    x: usize,
    y: usize,
    blocked: F,
) -> Option<Vec<usize>> {
    if blocked(x) || blocked(y) {
        return None;
    }
    if x == y {
        return Some(vec![x]);
    }
    // Fast path: the direct shift route, if it is clean.
    let direct = shortest_route(space, x, y);
    if direct.iter().all(|&v| !blocked(v)) {
        return Some(direct);
    }
    let d = space.d();
    for a in 0..d {
        let entry = entry_path(space, x, a);
        if entry.iter().skip(1).any(|&v| blocked(v)) {
            continue;
        }
        for i in 1..d {
            let exit = exit_path(space, y, a, i);
            if exit.iter().take(exit.len() - 1).any(|&v| blocked(v)) {
                continue;
            }
            let mut path = entry.clone();
            path.extend(exit);
            path.dedup();
            // The construction can revisit a node when x and y are close to
            // the constant words; fall back to other (a, i) pairs then.
            let mut seen = std::collections::HashSet::new();
            if path.iter().all(|&v| seen.insert(v)) {
                return Some(path);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;
    use dbg_necklace::NecklacePartition;

    fn check_path(g: &DeBruijn, path: &[usize]) {
        for w in path.windows(2) {
            assert!(
                g.is_edge(w[0], w[1]),
                "{} -> {} is not an edge",
                g.label(w[0]),
                g.label(w[1])
            );
        }
    }

    #[test]
    fn shortest_route_is_correct_and_within_diameter() {
        for (d, n) in [(2u64, 5u32), (3, 3), (4, 3)] {
            let g = DeBruijn::new(d, n);
            let s = g.space();
            for u in (0..g.len()).step_by(5) {
                for v in (0..g.len()).step_by(7) {
                    let path = shortest_route(s, u, v);
                    check_path(&g, &path);
                    assert_eq!(path[0], u);
                    assert_eq!(*path.last().unwrap(), v);
                    assert!(distance(s, u, v) <= n);
                    assert_eq!(path.len() as u32, distance(s, u, v) + 1);
                }
            }
        }
    }

    #[test]
    fn distance_examples() {
        let s = WordSpace::new(2, 4);
        let g = DeBruijn::new(2, 4);
        assert_eq!(
            distance(s, g.node("0110").unwrap(), g.node("1101").unwrap()),
            1
        );
        assert_eq!(
            distance(s, g.node("0110").unwrap(), g.node("0110").unwrap()),
            0
        );
        assert_eq!(
            distance(s, g.node("0000").unwrap(), g.node("1111").unwrap()),
            4
        );
        // 0101 and 0111 overlap in "01", so two hops: 0101 → 1011 → 0111.
        assert_eq!(
            distance(s, g.node("0101").unwrap(), g.node("0111").unwrap()),
            2
        );
    }

    #[test]
    fn proposition_2_2_entry_paths_are_necklace_disjoint() {
        // The d paths P_a share no intermediate necklace (the core of the
        // Proposition 2.2 proof).
        for (d, n) in [(3u64, 3u32), (4, 3), (5, 2)] {
            let g = DeBruijn::new(d, n);
            let s = g.space();
            let part = NecklacePartition::new(s);
            for x in (0..g.len()).step_by(11) {
                for a in 0..d {
                    check_path(&g, &entry_path(s, x, a));
                }
                // Cross-path disjointness of intermediate necklaces.
                for a in 0..d {
                    for b in (a + 1)..d {
                        let pa: std::collections::HashSet<usize> = entry_path(s, x, a)
                            .iter()
                            .skip(1)
                            .map(|&v| part.id_of(v as u64))
                            .collect();
                        let pb: std::collections::HashSet<usize> = entry_path(s, x, b)
                            .iter()
                            .skip(1)
                            .map(|&v| part.id_of(v as u64))
                            .collect();
                        assert!(pa.is_disjoint(&pb), "P_{a} and P_{b} share a necklace");
                    }
                }
            }
        }
    }

    #[test]
    fn fault_avoiding_route_dodges_faulty_necklaces() {
        let d = 5u64;
        let n = 3u32;
        let g = DeBruijn::new(d, n);
        let s = g.space();
        let part = NecklacePartition::new(s);
        // Block d − 2 = 3 necklaces.
        let blocked_necklaces: Vec<usize> = vec![
            part.id_of(s.parse("012").unwrap()),
            part.id_of(s.parse("123").unwrap()),
            part.id_of(s.parse("044").unwrap()),
        ];
        let blocked = |v: usize| blocked_necklaces.contains(&part.id_of(v as u64));
        let mut routed = 0;
        for x in (0..g.len()).step_by(13) {
            for y in (0..g.len()).step_by(17) {
                if blocked(x) || blocked(y) {
                    continue;
                }
                let path = fault_avoiding_route(s, x, y, blocked)
                    .unwrap_or_else(|| panic!("no route {x} -> {y}"));
                check_path(&g, &path);
                assert_eq!(path[0], x);
                assert_eq!(*path.last().unwrap(), y);
                assert!(path.iter().all(|&v| !blocked(v)));
                assert!(
                    path.len() <= 2 * n as usize + 1,
                    "route longer than 2n hops"
                );
                routed += 1;
            }
        }
        assert!(routed > 50);
    }

    #[test]
    fn fault_avoiding_route_degenerate_cases() {
        let s = WordSpace::new(3, 3);
        assert_eq!(fault_avoiding_route(s, 5, 5, |_| false), Some(vec![5]));
        assert_eq!(fault_avoiding_route(s, 5, 7, |v| v == 5), None);
    }
}
