//! Graphviz DOT export.
//!
//! The figure-regeneration binaries (`dbg-bench`, `figures`) emit DOT text
//! for the paper's structural figures (Figures 1.1, 1.2, 2.3, 3.3, 3.4) so
//! they can be rendered and compared against the thesis drawings.

use crate::digraph::DiGraph;
use crate::ungraph::UnGraph;

/// Renders a directed graph to DOT. `label` maps node ids to display labels.
#[must_use]
pub fn digraph_to_dot<F: Fn(usize) -> String>(graph: &DiGraph, name: &str, label: F) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{name}\" {{\n"));
    out.push_str("  node [shape=circle];\n");
    for v in 0..graph.len() {
        out.push_str(&format!("  n{v} [label=\"{}\"];\n", label(v)));
    }
    for (u, v) in graph.edges() {
        out.push_str(&format!("  n{u} -> n{v};\n"));
    }
    out.push_str("}\n");
    out
}

/// Renders an undirected graph to DOT.
#[must_use]
pub fn ungraph_to_dot<F: Fn(usize) -> String>(graph: &UnGraph, name: &str, label: F) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph \"{name}\" {{\n"));
    out.push_str("  node [shape=circle];\n");
    for v in 0..graph.len() {
        out.push_str(&format!("  n{v} [label=\"{}\"];\n", label(v)));
    }
    for (u, v) in graph.edges() {
        out.push_str(&format!("  n{u} -- n{v};\n"));
    }
    out.push_str("}\n");
    out
}

/// Renders a directed graph where a subset of edges is highlighted (used to
/// overlay an embedded ring on the host graph).
#[must_use]
pub fn digraph_with_highlight<F: Fn(usize) -> String>(
    graph: &DiGraph,
    highlighted: &[(usize, usize)],
    name: &str,
    label: F,
) -> String {
    use std::collections::HashSet;
    let hi: HashSet<(usize, usize)> = highlighted.iter().copied().collect();
    let mut out = String::new();
    out.push_str(&format!("digraph \"{name}\" {{\n"));
    out.push_str("  node [shape=circle];\n");
    for v in 0..graph.len() {
        out.push_str(&format!("  n{v} [label=\"{}\"];\n", label(v)));
    }
    for (u, v) in graph.edges() {
        if hi.contains(&(u, v)) {
            out.push_str(&format!("  n{u} -> n{v} [color=red, penwidth=2.0];\n"));
        } else {
            out.push_str(&format!("  n{u} -> n{v} [color=gray];\n"));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::DeBruijn;

    #[test]
    fn dot_output_contains_all_edges_and_labels() {
        let b = DeBruijn::new(2, 3);
        let g = b.to_digraph();
        let dot = digraph_to_dot(&g, "B(2,3)", |v| b.label(v));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"000\""));
        assert!(dot.contains("label=\"111\""));
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
    }

    #[test]
    fn undirected_dot() {
        let ub = DeBruijn::new(2, 3).to_undirected();
        let dot = ungraph_to_dot(&ub, "UB(2,3)", |v| format!("{v}"));
        assert!(dot.starts_with("graph"));
        assert_eq!(dot.matches(" -- ").count(), ub.num_edges());
    }

    #[test]
    fn highlight_marks_requested_edges() {
        let b = DeBruijn::new(2, 3);
        let g = b.to_digraph();
        let dot = digraph_with_highlight(&g, &[(0, 1)], "B", |v| b.label(v));
        assert!(dot.contains("n0 -> n1 [color=red"));
        assert!(dot.contains("color=gray"));
    }
}
