//! The Kautz digraph K(d,n).
//!
//! The Kautz graph is the subgraph of B(d+1,n) induced by the words with no
//! two consecutive equal symbols. It is mentioned by the paper (Chapter 5,
//! [BP89]) as the natural sibling of the de Bruijn graph for future work on
//! disjoint Hamiltonian cycles; it is provided here so downstream
//! experiments can compare topologies.

use dbg_algebra::words::WordSpace;

use crate::digraph::DiGraph;
use crate::topology::Topology;

/// The Kautz digraph K(d,n): words of length n over an alphabet of d+1
/// symbols in which consecutive symbols differ; (d+1)·d^(n−1) nodes, each
/// with out-degree d.
#[derive(Clone, Debug)]
pub struct Kautz {
    space: WordSpace,
    /// Node ids are dense: `codes[i]` is the word code of node i.
    codes: Vec<u64>,
    /// Reverse map from word code to dense node id (usize::MAX = absent).
    index: Vec<usize>,
}

impl Kautz {
    /// Creates K(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        let space = WordSpace::new(d + 1, n);
        let mut codes = Vec::new();
        let mut index = vec![usize::MAX; space.count() as usize];
        for code in space.iter() {
            let digits = space.digits(code);
            if digits.windows(2).all(|w| w[0] != w[1]) {
                index[code as usize] = codes.len();
                codes.push(code);
            }
        }
        Kautz {
            space,
            codes,
            index,
        }
    }

    /// Degree parameter d (out-degree of every node).
    #[must_use]
    pub fn d(&self) -> u64 {
        self.space.d() - 1
    }

    /// Word length n.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.space.n()
    }

    /// Number of nodes, (d+1)·d^(n−1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The word code of a dense node id.
    #[must_use]
    pub fn code(&self, v: usize) -> u64 {
        self.codes[v]
    }

    /// Formats node `v` as its digit string.
    #[must_use]
    pub fn label(&self, v: usize) -> String {
        self.space.format(self.codes[v])
    }

    /// Materialises the digraph.
    #[must_use]
    pub fn to_digraph(&self) -> DiGraph {
        DiGraph::from_topology(self)
    }
}

impl Topology for Kautz {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        let code = self.codes[v];
        let last = code % self.space.d();
        for a in 0..self.space.d() {
            if a == last {
                continue;
            }
            let succ = self.space.shift_append(code, a);
            let id = self.index[succ as usize];
            if id != usize::MAX {
                visit(id);
            }
        }
    }

    fn out_degree(&self, _v: usize) -> usize {
        self.d() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        for (d, n) in [(2u64, 2u32), (2, 3), (3, 2), (3, 3)] {
            let k = Kautz::new(d, n);
            let expected = (d + 1) * dbg_algebra::num::pow(d, n - 1);
            assert_eq!(k.len() as u64, expected, "d={d} n={n}");
            let dg = k.to_digraph();
            assert_eq!(dg.num_edges() as u64, expected * d);
            for v in 0..k.len() {
                assert_eq!(dg.out_neighbors(v).len() as u64, d);
                assert_eq!(dg.in_degree(v) as u64, d);
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let k = Kautz::new(2, 3);
        let dg = k.to_digraph();
        for v in 0..k.len() {
            assert!(!dg.out_neighbors(v).contains(&(v as u32)));
        }
    }
}
