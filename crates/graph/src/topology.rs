//! The [`Topology`] trait: a uniform directed-graph view.
//!
//! Graph algorithms in this workspace (BFS, component search, cycle
//! validation, the FFC embedding itself) only ever need two things from a
//! network: how many nodes it has, and the successors of a node. Expressing
//! that as a trait lets the same algorithm run over
//!
//! * a materialised [`DiGraph`](crate::digraph::DiGraph),
//! * an implicit generator such as [`DeBruijn`](crate::debruijn::DeBruijn)
//!   (important for B(2,20)-sized instances where edge lists are wasteful),
//! * or a [`FaultyView`](crate::faults::FaultyView) that masks failed
//!   nodes/links without copying the graph.

/// A directed graph with nodes `0..node_count()`.
pub trait Topology {
    /// Number of nodes. Node ids are `0..node_count()`.
    fn node_count(&self) -> usize;

    /// Calls `visit` for every successor of `v` (duplicates allowed if the
    /// underlying multigraph has parallel edges; self-loops included).
    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize));

    /// Monomorphized successor visit: like [`Topology::for_each_successor`]
    /// but generic over the closure, so hot loops (BFS, component search,
    /// protocol flooding) pay no dynamic dispatch per edge. The default
    /// forwards to `for_each_successor`; implementors on hot paths
    /// (implicit generators, fault-masked views) override it with a direct
    /// loop. Not available on `dyn Topology` — trait objects keep using
    /// `for_each_successor`.
    #[inline]
    fn visit_successors<F: FnMut(usize)>(&self, v: usize, mut visit: F)
    where
        Self: Sized,
    {
        self.for_each_successor(v, &mut visit);
    }

    /// The successors of `v`, collected into a vector.
    fn successors(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_successor(v, &mut |u| out.push(u));
        out
    }

    /// Total number of directed edges (counted with multiplicity).
    fn edge_count(&self) -> usize {
        let mut m = 0usize;
        for v in 0..self.node_count() {
            self.for_each_successor(v, &mut |_| m += 1);
        }
        m
    }

    /// Whether `(u, v)` is an edge.
    fn has_edge(&self, u: usize, v: usize) -> bool {
        let mut found = false;
        self.for_each_successor(u, &mut |w| {
            if w == v {
                found = true;
            }
        });
        found
    }

    /// Out-degree of `v`.
    fn out_degree(&self, v: usize) -> usize {
        let mut c = 0;
        self.for_each_successor(v, &mut |_| c += 1);
        c
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        (**self).for_each_successor(v, visit);
    }
    fn successors(&self, v: usize) -> Vec<usize> {
        (**self).successors(v)
    }
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }
    fn has_edge(&self, u: usize, v: usize) -> bool {
        (**self).has_edge(u, v)
    }
    fn out_degree(&self, v: usize) -> usize {
        (**self).out_degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    #[test]
    fn default_methods_consistent() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g.add_edge(0, 0);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(Topology::successors(&g, 0), vec![1, 0]);
        // Reference blanket impl.
        let r: &dyn Topology = &g;
        assert_eq!(r.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn visit_successors_matches_for_each_successor() {
        use crate::debruijn::DeBruijn;
        use crate::faults::FaultSet;
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        for v in 0..4 {
            let mut a = Vec::new();
            g.for_each_successor(v, &mut |u| a.push(u));
            let mut b = Vec::new();
            g.visit_successors(v, |u| b.push(u));
            assert_eq!(a, b, "DiGraph node {v}");
        }
        let db = DeBruijn::new(3, 3);
        let faults = FaultSet::from_nodes([5, 9]);
        let view = faults.view(&db);
        for v in 0..db.len() {
            let mut a = Vec::new();
            db.for_each_successor(v, &mut |u| a.push(u));
            let mut b = Vec::new();
            db.visit_successors(v, |u| b.push(u));
            assert_eq!(a, b, "DeBruijn node {v}");
            let mut a = Vec::new();
            view.for_each_successor(v, &mut |u| a.push(u));
            let mut b = Vec::new();
            view.visit_successors(v, |u| b.push(u));
            assert_eq!(a, b, "FaultyView node {v}");
            for u in 0..db.len() {
                assert_eq!(
                    view.has_edge(v, u),
                    a.contains(&u),
                    "FaultyView has_edge({v},{u})"
                );
            }
        }
    }
}
