//! Fault models: failed processors (nodes) and failed links (edges).
//!
//! The paper's fault model (Section 1.1) is *total* failure: a faulty node
//! can neither compute nor route, so it is removed from the graph together
//! with its incident edges; a faulty link is removed on its own. A
//! [`FaultSet`] records both kinds, and [`FaultyView`] presents any
//! [`Topology`] with the faults masked out — no copying of the underlying
//! graph is needed, which matters for the Monte-Carlo sweeps of Tables 2.1
//! and 2.2.
//!
//! Node faults are held in a word-packed bitset, so the membership test on
//! the hot path of every masked traversal is one shift/mask pair instead
//! of a hash probe, and a fault set for a d^n-node graph costs d^n / 8
//! bytes. A one-bit-per-word summary (bit `j` set ⟺ word `j` may hold a
//! fault) rides alongside, so iterating the faults of a sparse set over a
//! huge node space skip-scans occupied words instead of sweeping millions
//! of zeros — the same block-hierarchical trick the core engine's
//! frontier bitmaps use. Edge faults (rare, and only ever a handful per
//! experiment) live in a small sorted vector searched by binary search.

use crate::topology::Topology;

/// A set of faulty nodes and faulty directed edges.
#[derive(Clone, Debug, Default)]
pub struct FaultSet {
    /// Word-packed node-fault bitset: bit `v` set ⟺ node `v` is faulty.
    /// Grows on demand; absent words mean "not faulty".
    node_bits: Vec<u64>,
    /// Hierarchical summary: bit `j` set ⟺ `node_bits[j]` may be
    /// non-zero (occupied ⊆ marked; a false positive costs one extra word
    /// probe, a false negative would lose faults — never produced).
    node_sum: Vec<u64>,
    /// Number of set bits in `node_bits`.
    node_count: usize,
    /// Explicitly failed directed edges, sorted and deduplicated.
    edges: Vec<(usize, usize)>,
}

impl FaultSet {
    /// An empty fault set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A fault set with the given faulty nodes.
    #[must_use]
    pub fn from_nodes<I: IntoIterator<Item = usize>>(nodes: I) -> Self {
        let mut set = FaultSet::new();
        for v in nodes {
            set.fail_node(v);
        }
        set
    }

    /// A fault set with the given faulty directed edges.
    #[must_use]
    pub fn from_edges<I: IntoIterator<Item = (usize, usize)>>(edges: I) -> Self {
        let mut set = FaultSet::new();
        for (u, v) in edges {
            set.fail_edge(u, v);
        }
        set
    }

    /// Marks a node as faulty.
    pub fn fail_node(&mut self, v: usize) {
        let word = v / 64;
        if word >= self.node_bits.len() {
            self.node_bits.resize(word + 1, 0);
        }
        let sum_word = word / 64;
        if sum_word >= self.node_sum.len() {
            self.node_sum.resize(sum_word + 1, 0);
        }
        let mask = 1u64 << (v % 64);
        if self.node_bits[word] & mask == 0 {
            self.node_bits[word] |= mask;
            self.node_sum[sum_word] |= 1u64 << (word % 64);
            self.node_count += 1;
        }
    }

    /// Marks a directed edge as faulty.
    pub fn fail_edge(&mut self, u: usize, v: usize) {
        if let Err(pos) = self.edges.binary_search(&(u, v)) {
            self.edges.insert(pos, (u, v));
        }
    }

    /// Marks an undirected link as faulty (both directions).
    pub fn fail_link(&mut self, u: usize, v: usize) {
        self.fail_edge(u, v);
        self.fail_edge(v, u);
    }

    /// Whether node `v` is faulty.
    #[inline]
    #[must_use]
    pub fn node_is_faulty(&self, v: usize) -> bool {
        self.node_bits
            .get(v / 64)
            .is_some_and(|w| w & (1u64 << (v % 64)) != 0)
    }

    /// Whether the directed edge `(u, v)` is faulty (either explicitly or
    /// because one of its endpoints is a faulty node).
    #[inline]
    #[must_use]
    pub fn edge_is_faulty(&self, u: usize, v: usize) -> bool {
        self.node_is_faulty(u)
            || self.node_is_faulty(v)
            || (!self.edges.is_empty() && self.edges.binary_search(&(u, v)).is_ok())
    }

    /// The faulty nodes, in increasing id order — a two-level skip-scan:
    /// the summary selects occupied words, `trailing_zeros` walks each
    /// word's set bits, so cost scales with faults plus occupied blocks,
    /// not with the node-space size.
    pub fn faulty_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.node_sum.iter().enumerate().flat_map(move |(si, &sw)| {
            BitIndices(sw).flat_map(move |sb| {
                let j = si * 64 + sb;
                let word = self.node_bits.get(j).copied().unwrap_or(0);
                BitIndices(word).map(move |b| j * 64 + b)
            })
        })
    }

    /// The explicitly faulty edges in sorted order (node-induced edge
    /// failures are not listed).
    #[must_use]
    pub fn faulty_edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of faulty nodes.
    #[must_use]
    pub fn node_fault_count(&self) -> usize {
        self.node_count
    }

    /// Number of explicitly faulty edges.
    #[must_use]
    pub fn edge_fault_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether no faults are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_count == 0 && self.edges.is_empty()
    }

    /// Restricts a topology to its fault-free part.
    #[must_use]
    pub fn view<'a, T: Topology>(&'a self, graph: &'a T) -> FaultyView<'a, T> {
        FaultyView {
            graph,
            faults: self,
        }
    }
}

/// Iterator over the set-bit indices of one word, low to high.
struct BitIndices(u64);

impl Iterator for BitIndices {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// A [`Topology`] with the faults of a [`FaultSet`] masked out. Faulty nodes
/// keep their ids (so node numbering is stable) but have no incident edges.
#[derive(Clone, Copy, Debug)]
pub struct FaultyView<'a, T: Topology> {
    graph: &'a T,
    faults: &'a FaultSet,
}

impl<'a, T: Topology> FaultyView<'a, T> {
    /// Creates a view of `graph` with `faults` removed.
    #[must_use]
    pub fn new(graph: &'a T, faults: &'a FaultSet) -> Self {
        FaultyView { graph, faults }
    }

    /// The underlying fault set.
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        self.faults
    }

    /// The underlying (fault-free) topology.
    #[must_use]
    pub fn inner(&self) -> &T {
        self.graph
    }

    /// Whether node `v` participates in the faulty graph.
    #[must_use]
    pub fn node_is_alive(&self, v: usize) -> bool {
        !self.faults.node_is_faulty(v)
    }
}

impl<T: Topology> Topology for FaultyView<'_, T> {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        if self.faults.node_is_faulty(v) {
            return;
        }
        self.graph.for_each_successor(v, &mut |u| {
            if !self.faults.node_is_faulty(u) && !self.faults.edge_is_faulty(v, u) {
                visit(u);
            }
        });
    }

    #[inline]
    fn visit_successors<F: FnMut(usize)>(&self, v: usize, mut visit: F) {
        if self.faults.node_is_faulty(v) {
            return;
        }
        self.graph.visit_successors(v, |u| {
            if !self.faults.node_is_faulty(u) && !self.faults.edge_is_faulty(v, u) {
                visit(u);
            }
        });
    }

    fn has_edge(&self, u: usize, v: usize) -> bool {
        !self.faults.node_is_faulty(u)
            && !self.faults.node_is_faulty(v)
            && !self.faults.edge_is_faulty(u, v)
            && self.graph.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    #[test]
    fn node_faults_remove_incident_edges() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let faults = FaultSet::from_nodes([2]);
        let view = faults.view(&g);
        assert_eq!(view.successors(1), Vec::<usize>::new());
        assert_eq!(view.successors(2), Vec::<usize>::new());
        assert_eq!(view.successors(0), vec![1]);
        assert!(view.node_is_alive(0));
        assert!(!view.node_is_alive(2));
        assert_eq!(view.edge_count(), 2);
    }

    #[test]
    fn edge_faults_are_directed_links_are_bidirectional() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let mut faults = FaultSet::new();
        faults.fail_edge(0, 1);
        let view = faults.view(&g);
        assert_eq!(view.successors(0), Vec::<usize>::new());
        assert_eq!(view.successors(1), vec![0, 2]);

        let mut link_faults = FaultSet::new();
        link_faults.fail_link(0, 1);
        let view2 = link_faults.view(&g);
        assert_eq!(view2.successors(0), Vec::<usize>::new());
        assert_eq!(view2.successors(1), vec![2]);
        assert_eq!(link_faults.edge_fault_count(), 2);
    }

    #[test]
    fn constructors_and_queries() {
        let f = FaultSet::from_edges([(1, 2), (3, 4)]);
        assert!(f.edge_is_faulty(1, 2));
        assert!(!f.edge_is_faulty(2, 1));
        assert!(!f.node_is_faulty(1));
        assert_eq!(f.edge_fault_count(), 2);
        assert_eq!(f.node_fault_count(), 0);
        assert!(!f.is_empty());
        assert!(FaultSet::new().is_empty());
    }

    #[test]
    fn bitset_semantics_match_set_semantics() {
        let mut f = FaultSet::new();
        // Duplicates count once; ids far apart pack into separate words.
        f.fail_node(3);
        f.fail_node(3);
        f.fail_node(64);
        f.fail_node(1000);
        assert_eq!(f.node_fault_count(), 3);
        assert!(f.node_is_faulty(3));
        assert!(f.node_is_faulty(64));
        assert!(f.node_is_faulty(1000));
        assert!(!f.node_is_faulty(2));
        assert!(!f.node_is_faulty(65));
        // Queries far beyond the grown range are simply "not faulty".
        assert!(!f.node_is_faulty(1 << 30));
        assert_eq!(f.faulty_nodes().collect::<Vec<_>>(), vec![3, 64, 1000]);
        // Edge dedup.
        f.fail_edge(5, 6);
        f.fail_edge(5, 6);
        assert_eq!(f.edge_fault_count(), 1);
        assert_eq!(f.faulty_edges(), &[(5, 6)]);
    }

    #[test]
    fn skip_scan_iteration_matches_full_scan_order() {
        // Faults scattered across summary-block boundaries: same summary
        // word (ids < 4096), the next summary word, and far beyond —
        // skip-scan must visit them in ascending order with none missed.
        let ids = [0usize, 63, 64, 4095, 4096, 4159, 262_144, 262_207];
        let f = FaultSet::from_nodes(ids);
        assert_eq!(f.faulty_nodes().collect::<Vec<_>>(), ids.to_vec());
        assert_eq!(f.node_fault_count(), ids.len());
        // Reference: brute-force over every bit of the grown bitset.
        let brute: Vec<usize> = (0..f.node_bits.len() * 64)
            .filter(|&v| f.node_is_faulty(v))
            .collect();
        assert_eq!(f.faulty_nodes().collect::<Vec<_>>(), brute);
    }
}
