//! The d-ary de Bruijn digraph B(d,n) and its undirected version UB(d,n).
//!
//! B(d,n) (Section 1.2) has the d^n words of length n over `{0,…,d−1}` as
//! nodes and a directed edge from `x_1…x_n` to `x_2…x_n·a` for every symbol
//! `a`. Every node has in-degree and out-degree d, and the constant words
//! `a^n` carry self-loops. Node ids are the base-d codes of the words (see
//! [`dbg_algebra::words::WordSpace`]), so the graph never has to be
//! materialised for algorithms that only need successor enumeration.
//!
//! UB(d,n) is obtained by deleting loops, forgetting orientation and merging
//! parallel edges; its degree profile (d nodes of degree 2d−2, d(d−1) of
//! degree 2d−1, the rest of degree 2d) is checked in the tests.

use dbg_algebra::words::WordSpace;

use crate::digraph::DiGraph;
use crate::topology::Topology;
use crate::ungraph::UnGraph;

/// The directed de Bruijn graph B(d,n), represented implicitly.
#[derive(Clone, Copy, Debug)]
pub struct DeBruijn {
    space: WordSpace,
}

impl DeBruijn {
    /// Creates B(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        DeBruijn {
            space: WordSpace::new(d, n),
        }
    }

    /// The word space (alphabet size and word length) of the node labels.
    #[must_use]
    pub fn space(&self) -> WordSpace {
        self.space
    }

    /// Alphabet size d.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.space.d()
    }

    /// Word length n.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.space.n()
    }

    /// Number of nodes, d^n.
    #[must_use]
    pub fn len(&self) -> usize {
        self.space.count() as usize
    }

    /// Always false (B(d,n) has at least 2^1 = 2 nodes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The de Bruijn successor obtained by appending symbol `a`.
    #[must_use]
    pub fn successor(&self, v: usize, a: u64) -> usize {
        self.space.shift_append(v as u64, a) as usize
    }

    /// The de Bruijn predecessor obtained by prepending symbol `a`.
    #[must_use]
    pub fn predecessor(&self, v: usize, a: u64) -> usize {
        self.space.shift_prepend(v as u64, a) as usize
    }

    /// All d predecessors of `v`.
    #[must_use]
    pub fn predecessors(&self, v: usize) -> Vec<usize> {
        (0..self.d()).map(|a| self.predecessor(v, a)).collect()
    }

    /// Whether `(u, v)` is a de Bruijn edge (including loops).
    #[must_use]
    pub fn is_edge(&self, u: usize, v: usize) -> bool {
        let d = self.d();
        (0..d).any(|a| self.successor(u, a) == v)
    }

    /// Materialises the digraph (d^n nodes, d^(n+1) edges including loops).
    #[must_use]
    pub fn to_digraph(&self) -> DiGraph {
        DiGraph::from_topology(self)
    }

    /// The undirected de Bruijn graph UB(d,n): loops removed, orientation
    /// dropped, parallel edges merged.
    #[must_use]
    pub fn to_undirected(&self) -> UnGraph {
        let n = self.len();
        let mut g = UnGraph::new(n);
        for v in 0..n {
            for a in 0..self.d() {
                let u = self.successor(v, a);
                if u != v && !g.has_edge(v, u) {
                    g.add_edge(v, u);
                }
            }
        }
        g
    }

    /// The number of non-loop directed edges, d(d^n − 1). (The paper's
    /// hypercube comparison in the Chapter 2 intro quotes the total
    /// directed-edge count d·d^n = 16 384 for B(4,6), i.e. loops included;
    /// that figure is [`Topology::edge_count`].)
    #[must_use]
    pub fn non_loop_edge_count(&self) -> usize {
        (self.d() as usize) * (self.len() - 1)
    }

    /// Formats node `v` as its digit string.
    #[must_use]
    pub fn label(&self, v: usize) -> String {
        self.space.format(v as u64)
    }

    /// Parses a digit string into a node id.
    #[must_use]
    pub fn node(&self, s: &str) -> Option<usize> {
        self.space.parse(s).map(|c| c as usize)
    }
}

impl Topology for DeBruijn {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        for a in 0..self.d() {
            visit(self.successor(v, a));
        }
    }

    #[inline]
    fn visit_successors<F: FnMut(usize)>(&self, v: usize, mut visit: F) {
        // The d successors are the contiguous block starting at the
        // shifted prefix — one multiply-add per node, d adds per edge.
        let base = self.space.shift_append(v as u64, 0) as usize;
        for a in 0..self.d() as usize {
            visit(base + a);
        }
    }

    fn out_degree(&self, _v: usize) -> usize {
        self.d() as usize
    }

    fn edge_count(&self) -> usize {
        self.len() * self.d() as usize
    }

    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.is_edge(u, v)
    }
}

/// The undirected de Bruijn graph UB(d,n), kept as a thin wrapper that
/// remembers its parameters alongside the materialised adjacency.
#[derive(Clone, Debug)]
pub struct UndirectedDeBruijn {
    debruijn: DeBruijn,
    graph: UnGraph,
}

impl UndirectedDeBruijn {
    /// Creates UB(d,n).
    #[must_use]
    pub fn new(d: u64, n: u32) -> Self {
        let debruijn = DeBruijn::new(d, n);
        let graph = debruijn.to_undirected();
        UndirectedDeBruijn { debruijn, graph }
    }

    /// The underlying directed de Bruijn graph.
    #[must_use]
    pub fn directed(&self) -> &DeBruijn {
        &self.debruijn
    }

    /// The materialised undirected graph.
    #[must_use]
    pub fn graph(&self) -> &UnGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b23_structure_matches_figure_1_1a() {
        let g = DeBruijn::new(2, 3);
        assert_eq!(g.len(), 8);
        // 000 → 000, 001 ; 101 → 010, 011.
        assert_eq!(g.successors(g.node("000").unwrap()), vec![0, 1]);
        let n101 = g.node("101").unwrap();
        assert_eq!(
            g.successors(n101),
            vec![g.node("010").unwrap(), g.node("011").unwrap()]
        );
        // Loops at constant words only.
        for v in 0..g.len() {
            let has_loop = g.is_edge(v, v);
            let is_constant = v == g.node("000").unwrap() || v == g.node("111").unwrap();
            assert_eq!(has_loop, is_constant, "loop mismatch at {}", g.label(v));
        }
    }

    #[test]
    fn in_and_out_degree_are_d() {
        let g = DeBruijn::new(3, 3);
        let dg = g.to_digraph();
        for v in 0..g.len() {
            assert_eq!(dg.out_neighbors(v).len(), 3);
            assert_eq!(dg.in_degree(v), 3);
        }
        assert_eq!(dg.num_edges(), 27 * 3);
    }

    #[test]
    fn predecessors_invert_successors() {
        let g = DeBruijn::new(4, 3);
        for v in 0..g.len() {
            for a in 0..4 {
                let u = g.successor(v, a);
                assert!(g.predecessors(u).contains(&v));
            }
        }
    }

    #[test]
    fn undirected_degree_profile_pr82() {
        // UB(d,n): d nodes of degree 2d−2, d(d−1) of degree 2d−1, rest 2d.
        for (d, n) in [(2u64, 3u32), (2, 4), (3, 3), (4, 3)] {
            let ub = DeBruijn::new(d, n).to_undirected();
            let mut deg_counts = std::collections::HashMap::new();
            for v in 0..ub.len() {
                *deg_counts.entry(ub.degree(v)).or_insert(0usize) += 1;
            }
            let d = d as usize;
            let dn = ub.len();
            assert_eq!(
                deg_counts.get(&(2 * d - 2)).copied().unwrap_or(0),
                d,
                "d={d} n={n}"
            );
            assert_eq!(
                deg_counts.get(&(2 * d - 1)).copied().unwrap_or(0),
                d * (d - 1),
                "d={d} n={n}"
            );
            assert_eq!(
                deg_counts.get(&(2 * d)).copied().unwrap_or(0),
                dn - d * d,
                "d={d} n={n}"
            );
        }
    }

    #[test]
    fn ub23_matches_figure_1_2() {
        let ub = UndirectedDeBruijn::new(2, 3);
        let g = ub.graph();
        let node = |s: &str| ub.directed().node(s).unwrap();
        // Fig 1.2 edges (loops removed, 100↔110 etc.).
        for (a, b) in [
            ("000", "001"),
            ("001", "010"),
            ("001", "011"),
            ("010", "100"),
            ("010", "101"),
            ("011", "110"),
            ("011", "111"),
            ("100", "001"),
            ("101", "011"),
            ("110", "101"),
            ("110", "100"),
            ("111", "110"),
        ] {
            assert!(g.has_edge(node(a), node(b)), "missing edge {a}-{b}");
        }
        assert!(!g.has_edge(node("000"), node("000")));
    }

    #[test]
    fn edge_counts_match_paper_comparison() {
        // The Chapter 2 intro quotes 16 384 edges for the 4096-node B(4,6)
        // (d·d^n directed edges); without the d loops that is 16 380.
        let g = DeBruijn::new(4, 6);
        assert_eq!(g.edge_count(), 16_384);
        assert_eq!(g.non_loop_edge_count(), 16_380);
    }

    #[test]
    fn line_graph_property() {
        // B(d,n) is the line graph of B(d,n−1): the cycle
        // (012,122,221,212,120,201) in B(3,3) corresponds to the circuit
        // (01,12,22,21,12,20) in B(3,2) — Section 2.5.
        let g3 = DeBruijn::new(3, 3);
        let g2 = DeBruijn::new(3, 2);
        let cycle = ["012", "122", "221", "212", "120", "201"];
        for w in cycle.windows(2) {
            let u = g3.node(w[0]).unwrap();
            let v = g3.node(w[1]).unwrap();
            assert!(g3.is_edge(u, v));
            // Nodes of B(3,3) are edges of B(3,2): first two digits → last two digits.
            let (a, b) = (&w[0][..2], &w[0][1..]);
            assert!(g2.is_edge(g2.node(a).unwrap(), g2.node(b).unwrap()));
            let _ = b;
        }
    }
}
