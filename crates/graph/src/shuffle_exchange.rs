//! The binary shuffle-exchange graph SE(n).
//!
//! B(2,n) contains the shuffle-exchange graph as a subgraph (Section 1.2),
//! and the necklace structure exploited by the FFC algorithm was first
//! studied for shuffle-exchange layouts [Lei83, LHC89]. The graph is
//! included for completeness of the substrate and for the necklace-census
//! example.

use dbg_algebra::words::WordSpace;

use crate::topology::Topology;
use crate::ungraph::UnGraph;

/// The shuffle-exchange graph on 2^n nodes: shuffle edges rotate the word
/// left by one, exchange edges flip the last bit.
#[derive(Clone, Copy, Debug)]
pub struct ShuffleExchange {
    space: WordSpace,
}

impl ShuffleExchange {
    /// Creates SE(n) on binary words of length n.
    #[must_use]
    pub fn new(n: u32) -> Self {
        ShuffleExchange {
            space: WordSpace::new(2, n),
        }
    }

    /// Word length n.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.space.n()
    }

    /// Number of nodes, 2^n.
    #[must_use]
    pub fn len(&self) -> usize {
        self.space.count() as usize
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shuffle neighbor (left rotation).
    #[must_use]
    pub fn shuffle(&self, v: usize) -> usize {
        self.space.rotate_left(v as u64) as usize
    }

    /// The inverse-shuffle neighbor (right rotation).
    #[must_use]
    pub fn unshuffle(&self, v: usize) -> usize {
        self.space.rotate_right(v as u64) as usize
    }

    /// The exchange neighbor (last bit flipped).
    #[must_use]
    pub fn exchange(&self, v: usize) -> usize {
        v ^ 1
    }

    /// Materialises the undirected shuffle-exchange graph.
    #[must_use]
    pub fn to_ungraph(&self) -> UnGraph {
        let mut g = UnGraph::new(self.len());
        for v in 0..self.len() {
            let s = self.shuffle(v);
            if s != v {
                g.add_edge_unique(v, s);
            }
            let e = self.exchange(v);
            if e != v {
                g.add_edge_unique(v, e);
            }
        }
        g
    }
}

impl Topology for ShuffleExchange {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        visit(self.shuffle(v));
        visit(self.unshuffle(v));
        visit(self.exchange(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn se3_basics() {
        let se = ShuffleExchange::new(3);
        assert_eq!(se.len(), 8);
        assert_eq!(se.shuffle(0b011), 0b110);
        assert_eq!(se.unshuffle(0b110), 0b011);
        assert_eq!(se.exchange(0b110), 0b111);
        let g = se.to_ungraph();
        assert!(g.is_connected());
        // Every node has degree at most 3.
        for v in 0..8 {
            assert!(g.degree(v) <= 3);
        }
    }

    #[test]
    fn shuffle_orbit_is_necklace() {
        let se = ShuffleExchange::new(4);
        // The orbit of 0011 under shuffling is its necklace of size 4.
        let mut orbit = std::collections::HashSet::new();
        let mut v = 0b0011usize;
        for _ in 0..4 {
            orbit.insert(v);
            v = se.shuffle(v);
        }
        assert_eq!(orbit.len(), 4);
        assert_eq!(v, 0b0011);
    }
}
