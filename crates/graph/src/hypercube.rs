//! The binary hypercube Q(n).
//!
//! The hypercube is the paper's yard-stick: Chapter 2 compares the length
//! of the fault-free cycle found in B(4,6) against the known
//! 2^n − 2f bound for the 2^n-node hypercube [WC92, CL91a], and notes that
//! the hypercube needs 50% more links for the same node count. The
//! [`dbg-baselines`](../../baselines) crate builds the actual fault-tolerant
//! ring embedding on top of this topology.

use crate::topology::Topology;
use crate::ungraph::UnGraph;

/// The n-dimensional hypercube with 2^n nodes; node ids are bit strings.
#[derive(Clone, Copy, Debug)]
pub struct Hypercube {
    n: u32,
}

impl Hypercube {
    /// Creates Q(n).
    ///
    /// # Panics
    /// Panics if `n` is 0 or `2^n` overflows usize.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(
            (1..usize::BITS).contains(&n),
            "hypercube dimension out of range"
        );
        Hypercube { n }
    }

    /// The dimension n.
    #[must_use]
    pub fn dimension(&self) -> u32 {
        self.n
    }

    /// Number of nodes, 2^n.
    #[must_use]
    pub fn len(&self) -> usize {
        1usize << self.n
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The neighbor of `v` across dimension `i`.
    #[must_use]
    pub fn neighbor(&self, v: usize, i: u32) -> usize {
        debug_assert!(i < self.n);
        v ^ (1usize << i)
    }

    /// All n neighbors of `v`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        (0..self.n).map(|i| self.neighbor(v, i)).collect()
    }

    /// Number of undirected links, n·2^(n−1).
    #[must_use]
    pub fn link_count(&self) -> usize {
        (self.n as usize) << (self.n - 1)
    }

    /// Hamming distance between two nodes.
    #[must_use]
    pub fn distance(&self, u: usize, v: usize) -> u32 {
        ((u ^ v) as u64).count_ones()
    }

    /// Materialises the undirected graph.
    #[must_use]
    pub fn to_ungraph(&self) -> UnGraph {
        let mut g = UnGraph::new(self.len());
        for v in 0..self.len() {
            for i in 0..self.n {
                let u = self.neighbor(v, i);
                if u > v {
                    g.add_edge(v, u);
                }
            }
        }
        g
    }

    /// The standard reflected Gray code: a Hamiltonian cycle of Q(n)
    /// starting at 0, as a sequence of node ids.
    #[must_use]
    pub fn gray_code_cycle(&self) -> Vec<usize> {
        (0..self.len()).map(|i| i ^ (i >> 1)).collect()
    }
}

impl Topology for Hypercube {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn for_each_successor(&self, v: usize, visit: &mut dyn FnMut(usize)) {
        for i in 0..self.n {
            visit(self.neighbor(v, i));
        }
    }

    fn out_degree(&self, _v: usize) -> usize {
        self.n as usize
    }

    fn edge_count(&self) -> usize {
        self.len() * self.n as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_structure() {
        let q = Hypercube::new(3);
        assert_eq!(q.len(), 8);
        assert_eq!(q.link_count(), 12);
        assert_eq!(q.neighbors(0b000), vec![0b001, 0b010, 0b100]);
        assert_eq!(q.distance(0b000, 0b111), 3);
        let g = q.to_ungraph();
        assert_eq!(g.num_edges(), 12);
        assert!(g.is_connected());
    }

    #[test]
    fn q12_link_count_matches_paper_comparison() {
        // The 4096-node hypercube has 24 576 links (Chapter 2 intro).
        let q = Hypercube::new(12);
        assert_eq!(q.len(), 4096);
        assert_eq!(q.link_count(), 24_576);
    }

    #[test]
    fn gray_code_is_hamiltonian_cycle() {
        for n in 2..=10u32 {
            let q = Hypercube::new(n);
            let cycle = q.gray_code_cycle();
            assert_eq!(cycle.len(), q.len());
            let mut seen = vec![false; q.len()];
            for w in 0..cycle.len() {
                let a = cycle[w];
                let b = cycle[(w + 1) % cycle.len()];
                assert_eq!(q.distance(a, b), 1, "non-adjacent consecutive nodes");
                assert!(!seen[a]);
                seen[a] = true;
            }
        }
    }
}
