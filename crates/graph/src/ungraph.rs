//! A materialised undirected multigraph.

/// An undirected multigraph over nodes `0..n`. Used for the undirected de
/// Bruijn graph UB(d,n), the hypercube and the Hamiltonian-decomposition
/// figures of Section 3.2.3 (where the modified graph UMB may have doubled
/// edges).
#[derive(Clone, Debug, Default)]
pub struct UnGraph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl UnGraph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnGraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Adds the undirected edge `{u, v}` (self-loops allowed, stored once).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        self.adj[u].push(v as u32);
        if u != v {
            self.adj[v].push(u as u32);
        }
        self.edges += 1;
    }

    /// Adds `{u, v}` only if not already present; returns whether it was added.
    pub fn add_edge_unique(&mut self, u: usize, v: usize) -> bool {
        if self.has_edge(u, v) {
            false
        } else {
            self.add_edge(u, v);
            true
        }
    }

    /// Whether `{u, v}` is present.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].iter().any(|&w| w as usize == v)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges (with multiplicity).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Neighbors of `v` (with multiplicity; a self-loop appears once).
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v` counting a self-loop once.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Iterates over each undirected edge once, as `(min, max)` pairs with multiplicity.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, vs)| {
            vs.iter()
                .filter(move |&&v| v as usize >= u)
                .map(move |&v| (u, v as usize))
        })
    }

    /// Whether the graph is connected (ignoring isolated-node-free special
    /// cases: the empty graph is considered connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in &self.adj[v] {
                let u = u as usize;
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// The degree multiset as a sorted vector — handy for checking the
    /// degree profile of UB(d,n) stated in Section 1.2.
    #[must_use]
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.len()).map(|v| self.degree(v)).collect();
        d.sort_unstable();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_edges() {
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 3));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn connectivity() {
        let mut g = UnGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!g.is_connected());
        g.add_edge(1, 2);
        assert!(g.is_connected());
    }

    #[test]
    fn unique_edges_and_degree_sequence() {
        let mut g = UnGraph::new(3);
        assert!(g.add_edge_unique(0, 1));
        assert!(!g.add_edge_unique(1, 0));
        g.add_edge(1, 2);
        assert_eq!(g.degree_sequence(), vec![1, 1, 2]);
    }
}
